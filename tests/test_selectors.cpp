// The optimizer zoo (src/core/selectors) against its oracles.
//
// Three correctness anchors: branch-and-bound must reproduce the
// testkit's exhaustive enumeration decision for decision (same paths,
// bitwise objective), lazy greedy (CELF) must be bitwise identical to
// eager RoMe on every engine, and every zoo member must clear the
// (1 - 1/sqrt(e)) greedy guarantee against the exact optimum.  The
// remaining tests pin the sharp edges: admissible-bound dominance,
// deterministic tie-breaking, the loud node-cap failure, CELF staleness
// across budget steps and zero-gain ties, GainMemo isolation between
// runs, and the CLI/service plumbing (default behavior byte-identical
// to the pre-registry code, engine choice composing with optimizer
// choice).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_commands.h"
#include "core/exhaustive.h"
#include "core/expected_rank.h"
#include "core/kernel_er.h"
#include "core/rome.h"
#include "core/selectors/branch_and_bound.h"
#include "core/selectors/lazy_greedy.h"
#include "core/selectors/local_search.h"
#include "core/selectors/selector.h"
#include "core/selectors/stochastic_greedy.h"
#include "exp/workload.h"
#include "service/service.h"
#include "testkit/checks.h"
#include "testkit/instance.h"
#include "testkit/oracles.h"
#include "testkit/table_engine.h"
#include "util/flags.h"
#include "util/rng.h"

namespace rnt {
namespace {

constexpr double kTol = 1e-9;

double instance_total_cost(const testkit::TestInstance& inst) {
  double total = 0.0;
  for (const double c : inst.path_costs) total += c;
  return total;
}

double workload_total_cost(const exp::Workload& w) {
  std::vector<std::size_t> all(w.system->path_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return w.costs.subset_cost(*w.system, all);
}

/// A small instance with exact duplicate paths and unit costs: a dense
/// source of exact weight ties and zero marginal gains.
testkit::TestInstance tied_instance() {
  return testkit::make_instance(
      /*path_links=*/{{0}, {0}, {1}, {1}, {0, 1}, {2}},
      /*link_probs=*/{0.2, 0.3, 0.25},
      /*path_costs=*/{1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
      /*check_seed=*/7, "tied");
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

TEST(SelectorRegistry, NamesConstructAndRoundTrip) {
  const std::vector<std::string> names = core::selector_names();
  ASSERT_EQ(names.size(), 6u);
  for (const std::string& name : names) {
    const auto selector = core::make_selector(name);
    ASSERT_NE(selector, nullptr);
    EXPECT_EQ(selector->name(), name);
  }
}

TEST(SelectorRegistry, UnknownNameThrows) {
  EXPECT_THROW(core::make_selector("gradient-descent"),
               std::invalid_argument);
  EXPECT_THROW(core::make_selector(""), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Branch-and-bound vs the exhaustive oracles
// --------------------------------------------------------------------------

TEST(BranchAndBound, MatchesEnumerationOracleExactly) {
  std::size_t total_pruned = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const testkit::TestInstance inst = testkit::generate_instance(seed);
    const testkit::ExhaustiveErTable table(inst);
    const testkit::TableEngine engine(table);
    const core::ProbBoundEr prob_bound(inst.system, inst.model);
    for (const double frac : {0.35, 0.55, 0.8}) {
      const double budget = frac * instance_total_cost(inst);
      const testkit::OracleSelection opt =
          testkit::exhaustive_best_selection(inst, budget);
      for (const bool use_prob_bound : {false, true}) {
        core::BranchAndBoundOptions options;
        options.bound_engine = use_prob_bound ? &prob_bound : nullptr;
        const core::BranchAndBoundSelector bnb(options);
        core::SelectorStats stats;
        const core::Selection sel =
            bnb.select(inst.system, inst.costs, budget, engine, &stats);
        EXPECT_EQ(sel.paths, opt.paths)
            << "seed " << seed << " frac " << frac << " prob_bound "
            << use_prob_bound;
        EXPECT_EQ(sel.objective, opt.objective);  // Bitwise.
        EXPECT_EQ(sel.cost, opt.cost);            // Bitwise.
        EXPECT_GT(stats.nodes_explored, 0u);
        total_pruned += stats.nodes_pruned;
      }
    }
  }
  // The bound must actually cut work somewhere across the sweep —
  // otherwise it is enumeration wearing a costume.
  EXPECT_GT(total_pruned, 0u);
}

TEST(BranchAndBound, AgreesWithCoreExhaustiveObjective) {
  // core::exhaustive_optimum breaks ties differently (no mask order, no
  // budget tolerance), so cross-check the achieved objective, not paths.
  for (std::uint64_t seed = 3; seed <= 6; ++seed) {
    const testkit::TestInstance inst = testkit::generate_instance(seed);
    const testkit::ExhaustiveErTable table(inst);
    const testkit::TableEngine engine(table);
    const double budget = 0.6 * instance_total_cost(inst);
    const core::Selection brute = core::exhaustive_optimum(
        inst.system, inst.costs, budget, engine, /*max_paths=*/16);
    const core::Selection sel = core::BranchAndBoundSelector().select(
        inst.system, inst.costs, budget, engine);
    EXPECT_NEAR(sel.objective, brute.objective, kTol) << "seed " << seed;
  }
}

TEST(BranchAndBound, ProbBoundDominatesEveryNodeContainingTheOptimum) {
  // Admissibility, checked exhaustively: ProbBound of any subset is at
  // least its exact ER, so no node whose relaxation contains the optimum
  // can be pruned at the 1e-9 margin.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const testkit::TestInstance inst = testkit::generate_instance(seed);
    const testkit::ExhaustiveErTable table(inst);
    const core::ProbBoundEr bound(inst.system, inst.model);
    const std::size_t n = inst.path_count();
    for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
      std::vector<std::size_t> subset;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) subset.push_back(i);
      }
      EXPECT_GE(bound.evaluate(subset), table.er(mask) - kTol)
          << "seed " << seed << " mask " << mask;
    }
  }
}

TEST(BranchAndBound, DeterministicTieBreaking) {
  const testkit::TestInstance inst = tied_instance();
  const testkit::ExhaustiveErTable table(inst);
  const testkit::TableEngine engine(table);
  for (const double budget : {1.0, 2.0, 2.5, 3.0, 6.0}) {
    const testkit::OracleSelection opt =
        testkit::exhaustive_best_selection(inst, budget);
    const core::Selection a = core::BranchAndBoundSelector().select(
        inst.system, inst.costs, budget, engine);
    const core::Selection b = core::BranchAndBoundSelector().select(
        inst.system, inst.costs, budget, engine);
    EXPECT_EQ(a.paths, opt.paths) << "budget " << budget;
    EXPECT_EQ(a.paths, b.paths);
    EXPECT_EQ(a.objective, b.objective);
  }
}

TEST(BranchAndBound, NodeCapFailsLoudly) {
  const testkit::TestInstance inst = testkit::generate_instance(2);
  const testkit::ExhaustiveErTable table(inst);
  const testkit::TableEngine engine(table);
  // The exclude-first spine alone costs paths+1 nodes, so a cap of 4 on
  // a 3-path instance is guaranteed to trip regardless of pruning.
  ASSERT_EQ(inst.path_count(), 3u);
  core::BranchAndBoundOptions options;
  options.max_nodes = 4;
  const core::BranchAndBoundSelector bnb(options);
  EXPECT_THROW(bnb.select(inst.system, inst.costs,
                          0.5 * instance_total_cost(inst), engine),
               std::runtime_error);
}

TEST(BranchAndBound, RejectsTooManyPaths) {
  std::vector<std::vector<std::uint32_t>> path_links(17, {0u});
  const testkit::TestInstance inst = testkit::make_instance(
      std::move(path_links), {0.1}, std::vector<double>(17, 1.0), 1, "wide");
  const core::ExactEr engine(inst.system, inst.model);
  EXPECT_THROW(core::BranchAndBoundSelector().select(inst.system, inst.costs,
                                                     4.0, engine),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Lazy greedy (CELF) == eager RoMe, bitwise
// --------------------------------------------------------------------------

TEST(LazyGreedy, BitwiseEagerAcrossEnginesAndBudgets) {
  const exp::Workload w = exp::make_custom_workload(20, 40, 48, 5, 5.0);
  const double total = workload_total_cost(w);
  const core::ProbBoundEr prob(*w.system, *w.failures);

  for (const double frac : {0.05, 0.15, 0.3, 0.5, 0.8}) {
    const double budget = frac * total;
    for (int which = 0; which < 2; ++which) {
      Rng mc_rng(w.seed * 101);
      const core::MonteCarloEr monte(*w.system, *w.failures, 50, mc_rng);
      const core::ErEngine& engine =
          which == 0 ? static_cast<const core::ErEngine&>(prob) : monte;

      core::SelectorStats lazy_stats, eager_stats;
      const core::Selection lazy = core::LazyGreedySelector().select(
          *w.system, w.costs, budget, engine, &lazy_stats);
      core::RomeStats rome_stats;
      const core::Selection eager =
          core::rome_eager(*w.system, w.costs, budget, engine, &rome_stats);
      EXPECT_EQ(lazy.paths, eager.paths)
          << "engine " << engine.name() << " frac " << frac;
      EXPECT_EQ(lazy.objective, eager.objective);  // Bitwise.
      EXPECT_EQ(lazy.cost, eager.cost);            // Bitwise.
      // The point of CELF: far fewer gain evaluations than the scan.
      EXPECT_LT(lazy_stats.gain_evaluations, rome_stats.gain_evaluations);
    }
  }
}

TEST(LazyGreedy, StaleEntriesAcrossBudgetSteps) {
  // A budget that forces the fresh top to be dropped (too expensive)
  // while cheaper stale entries remain queued — the step where a stale
  // cached weight must not be trusted.
  const testkit::TestInstance inst = testkit::make_instance(
      {{0, 1}, {0}, {1}, {2}, {1, 2}},
      {0.3, 0.25, 0.2},
      {5.0, 1.0, 1.0, 1.5, 4.0},
      11, "budget-step");
  const testkit::ExhaustiveErTable table(inst);
  const testkit::TableEngine engine(table);
  const double total = instance_total_cost(inst);
  for (int step = 1; step <= 25; ++step) {
    const double budget = total * static_cast<double>(step) / 25.0;
    const core::Selection lazy = core::LazyGreedySelector().select(
        inst.system, inst.costs, budget, engine);
    const core::Selection eager =
        core::rome_eager(inst.system, inst.costs, budget, engine);
    EXPECT_EQ(lazy.paths, eager.paths) << "budget " << budget;
    EXPECT_EQ(lazy.objective, eager.objective);
    EXPECT_EQ(lazy.cost, eager.cost);
  }
}

TEST(LazyGreedy, ZeroGainTiesCommitInEagerOrder) {
  // Duplicate paths: once one copy is selected the other's gain is
  // exactly zero, and zero-weight entries still commit while the budget
  // lasts (Algorithm 1 drops nothing early).
  const testkit::TestInstance inst = tied_instance();
  const testkit::ExhaustiveErTable table(inst);
  const testkit::TableEngine engine(table);
  const core::Selection lazy = core::LazyGreedySelector().select(
      inst.system, inst.costs, 6.0, engine);
  const core::Selection eager =
      core::rome_eager(inst.system, inst.costs, 6.0, engine);
  EXPECT_EQ(lazy.paths, eager.paths);
  EXPECT_EQ(lazy.objective, eager.objective);
  EXPECT_EQ(lazy.size(), 6u);  // Everything affordable gets committed.
}

TEST(LazyGreedy, WeightFormulaMatchesRome) {
  // The shared cost-benefit ratio: gain / max(cost, 1e-12), free paths
  // effectively infinite.  Any drift here silently breaks bitwise parity
  // with rome.cpp.
  EXPECT_EQ(core::selector_detail::weight_of(2.0, 4.0), 0.5);
  EXPECT_EQ(core::selector_detail::weight_of(3.0, 0.0), 3.0 / 1e-12);
  EXPECT_EQ(core::selector_detail::weight_of(0.0, 5.0), 0.0);
}

TEST(LazyGreedy, GainMemoDoesNotLeakBetweenRuns) {
  // One long-lived kernel engine (whose accumulators share rank memo
  // machinery) must answer repeated selector runs bitwise identically —
  // no state bleeding from a previous run's GainMemo or rank cache.
  const exp::Workload w = exp::make_custom_workload(16, 32, 24, 9, 5.0);
  Rng rng(w.seed * 101);
  const core::KernelErEngine engine =
      core::KernelErEngine::monte_carlo(*w.system, *w.failures, 50, rng);
  const double budget = 0.3 * workload_total_cost(w);

  const core::Selection first =
      core::LazyGreedySelector().select(*w.system, w.costs, budget, engine);
  const core::Selection eager =
      core::rome_eager(*w.system, w.costs, budget, engine);
  const core::Selection second =
      core::LazyGreedySelector().select(*w.system, w.costs, budget, engine);
  EXPECT_EQ(first.paths, second.paths);
  EXPECT_EQ(first.objective, second.objective);
  EXPECT_EQ(first.paths, eager.paths);
  EXPECT_EQ(first.objective, eager.objective);
}

// --------------------------------------------------------------------------
// Stochastic greedy
// --------------------------------------------------------------------------

TEST(StochasticGreedy, DeterministicGivenSeed) {
  const exp::Workload w = exp::make_custom_workload(16, 32, 24, 4, 5.0);
  const core::ProbBoundEr engine(*w.system, *w.failures);
  const double budget = 0.3 * workload_total_cost(w);
  const core::Selection a = core::StochasticGreedySelector(99, 5).select(
      *w.system, w.costs, budget, engine);
  const core::Selection b = core::StochasticGreedySelector(99, 5).select(
      *w.system, w.costs, budget, engine);
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_LE(a.cost, budget + kTol);
}

TEST(StochasticGreedy, FullSampleDegeneratesToEager) {
  const exp::Workload w = exp::make_custom_workload(16, 32, 24, 4, 5.0);
  const core::ProbBoundEr engine(*w.system, *w.failures);
  for (const double frac : {0.2, 0.4, 0.7}) {
    const double budget = frac * workload_total_cost(w);
    const core::Selection stochastic =
        core::StochasticGreedySelector(1, w.system->path_count())
            .select(*w.system, w.costs, budget, engine);
    const core::Selection eager =
        core::rome_eager(*w.system, w.costs, budget, engine);
    EXPECT_EQ(stochastic.paths, eager.paths) << "frac " << frac;
    EXPECT_EQ(stochastic.objective, eager.objective);
  }
}

TEST(StochasticGreedy, SmallSampleDoesLessGainWork) {
  const exp::Workload w = exp::make_custom_workload(20, 40, 48, 5, 5.0);
  const core::ProbBoundEr engine(*w.system, *w.failures);
  const double budget = 0.3 * workload_total_cost(w);
  core::SelectorStats sampled_stats, eager_stats;
  core::StochasticGreedySelector(7, 6).select(*w.system, w.costs, budget,
                                              engine, &sampled_stats);
  core::make_selector("eager")->select(*w.system, w.costs, budget, engine,
                                       &eager_stats);
  EXPECT_LT(sampled_stats.gain_evaluations, eager_stats.gain_evaluations);
}

// --------------------------------------------------------------------------
// Local search
// --------------------------------------------------------------------------

TEST(LocalSearch, NeverWorseThanItsBaseAndWithinBudget) {
  const exp::Workload w = exp::make_custom_workload(16, 32, 24, 6, 5.0);
  const core::ProbBoundEr engine(*w.system, *w.failures);
  for (const double frac : {0.15, 0.3, 0.5}) {
    const double budget = frac * workload_total_cost(w);
    const core::Selection base = core::LazyGreedySelector().select(
        *w.system, w.costs, budget, engine);
    core::SelectorStats stats;
    const core::Selection polished = core::LocalSearchSelector().select(
        *w.system, w.costs, budget, engine, &stats);
    EXPECT_GE(polished.objective, base.objective - kTol) << "frac " << frac;
    EXPECT_LE(polished.cost, budget + kTol);
    EXPECT_GT(stats.evaluate_calls, 0u);
    EXPECT_EQ(polished.size(), base.size());  // Swaps preserve cardinality.
  }
}

TEST(LocalSearch, RepairsAGreedyMistake) {
  // Classic greedy trap under a knapsack: one mid-value path whose
  // cost-benefit ratio wins round one but blocks the budget for a
  // better pair.  Local search must swap its way out.
  const testkit::TestInstance inst = testkit::make_instance(
      {{0}, {1}, {0, 1, 2}},
      {0.4, 0.4, 0.05},
      {1.0, 1.0, 1.2},
      3, "greedy-trap");
  const testkit::ExhaustiveErTable table(inst);
  const testkit::TableEngine engine(table);
  const double budget = 2.0;
  const core::Selection greedy = core::LazyGreedySelector().select(
      inst.system, inst.costs, budget, engine);
  const core::Selection polished = core::LocalSearchSelector().select(
      inst.system, inst.costs, budget, engine);
  const testkit::OracleSelection opt =
      testkit::exhaustive_best_selection(inst, budget);
  EXPECT_GE(polished.objective, greedy.objective - kTol);
  // Whatever greedy did, the polished selection must reach the optimum
  // on this 3-path instance (the swap neighborhood covers it).
  EXPECT_NEAR(polished.objective, opt.objective, kTol);
}

// --------------------------------------------------------------------------
// The fuzz check wiring
// --------------------------------------------------------------------------

TEST(OptimizerBoundsCheck, PassesOnGeneratedInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const testkit::TestInstance inst = testkit::generate_instance(seed);
    const testkit::CheckResult result =
        testkit::check_optimizer_bounds(inst, {});
    EXPECT_TRUE(result.passed) << "seed " << seed << ": " << result.message;
  }
}

TEST(OptimizerBoundsCheck, IsRegistered) {
  const testkit::Check* check = testkit::find_check("optimizer-bounds");
  ASSERT_NE(check, nullptr);
  EXPECT_TRUE(check->shrinkable);
  EXPECT_EQ(check->fn, &testkit::check_optimizer_bounds);
}

// --------------------------------------------------------------------------
// CLI plumbing: registry path is byte-identical by default and composes
// --------------------------------------------------------------------------

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "test");
  return Flags(static_cast<int>(args.size()), args.data());
}

std::string run_select(std::vector<const char*> args) {
  auto flags = make_flags(std::move(args));
  std::ostringstream out;
  EXPECT_EQ(cli::cmd_select(flags, out), 0);
  flags.finish();
  return out.str();
}

TEST(CliSelect, DefaultOutputByteIdenticalThroughRegistry) {
  const std::string before = run_select(
      {"--nodes", "16", "--links", "32", "--paths", "24", "--seed", "5"});
  const std::string after =
      run_select({"--nodes", "16", "--links", "32", "--paths", "24", "--seed",
                  "5", "--optimizer", "rome"});
  EXPECT_EQ(before, after);
  EXPECT_NE(before.find("prob-rome selected"), std::string::npos);
}

TEST(CliSelect, EngineChoiceComposesWithOptimizerChoice) {
  // monte-rome on the kernel backend must reproduce kernel-rome: same
  // sampler, same seed, bitwise-equal ER — only the label differs.
  const std::string via_override =
      run_select({"--nodes", "16", "--links", "32", "--paths", "24", "--seed",
                  "5", "--algorithm", "monte-rome", "--engine", "kernel",
                  "--optimizer", "lazy-greedy"});
  const std::string native =
      run_select({"--nodes", "16", "--links", "32", "--paths", "24", "--seed",
                  "5", "--algorithm", "kernel-rome", "--optimizer",
                  "lazy-greedy"});
  const auto tail = [](const std::string& s) {
    return s.substr(s.find(" selected "));
  };
  EXPECT_EQ(tail(via_override), tail(native));
  EXPECT_NE(via_override.find("monte-rome+lazy-greedy"), std::string::npos);
}

TEST(CliSelect, LazyGreedyMatchesDefaultSelection) {
  const std::string rome = run_select(
      {"--nodes", "16", "--links", "32", "--paths", "24", "--seed", "5"});
  const std::string lazy =
      run_select({"--nodes", "16", "--links", "32", "--paths", "24", "--seed",
                  "5", "--optimizer", "lazy-greedy"});
  // Same selection and table; only the algorithm label changes.
  EXPECT_EQ(rome.substr(rome.find(" selected ")),
            lazy.substr(lazy.find(" selected ")));
}

TEST(CliSelect, RejectsUnknownOptimizerAndBadCompositions) {
  {
    auto flags = make_flags({"--nodes", "16", "--links", "32", "--paths",
                             "24", "--optimizer", "annealing"});
    std::ostringstream out;
    EXPECT_THROW(cli::cmd_select(flags, out), std::invalid_argument);
  }
  {
    auto flags =
        make_flags({"--nodes", "16", "--links", "32", "--paths", "24",
                    "--algorithm", "select-path", "--optimizer", "eager"});
    std::ostringstream out;
    EXPECT_THROW(cli::cmd_select(flags, out), std::invalid_argument);
  }
  {
    auto flags = make_flags({"--nodes", "16", "--links", "32", "--paths",
                             "24", "--engine", "gpu"});
    std::ostringstream out;
    EXPECT_THROW(cli::cmd_select(flags, out), std::invalid_argument);
  }
}

// --------------------------------------------------------------------------
// Service plumbing
// --------------------------------------------------------------------------

TEST(ServiceSelect, OptimizerFieldRoutesAndDefaultsMatch) {
  service::Service svc(service::ServiceConfig{.threads = 1,
                                              .cache_capacity = 2});
  const std::string base =
      "select nodes=16 links=32 paths=24 seed=5 intensity=5 budget-frac=0.3";
  const service::Response def = svc.handle_line(base);
  ASSERT_TRUE(def.ok) << def.error;
  EXPECT_EQ(def.at("optimizer"), "rome");

  const service::Response explicit_rome =
      svc.handle_line(base + " optimizer=rome");
  ASSERT_TRUE(explicit_rome.ok) << explicit_rome.error;
  EXPECT_EQ(def.fields, explicit_rome.fields);

  const service::Response lazy =
      svc.handle_line(base + " optimizer=lazy-greedy");
  ASSERT_TRUE(lazy.ok) << lazy.error;
  EXPECT_EQ(lazy.at("optimizer"), "lazy-greedy");
  // CELF == RoMe's lazy Minoux == eager on this workload: identical
  // selection, bitwise identical objective string over the wire.
  EXPECT_EQ(def.at("paths"), lazy.at("paths"));
  EXPECT_EQ(def.at("objective"), lazy.at("objective"));

  const service::Response bad = svc.handle_line(base + " optimizer=annealing");
  EXPECT_FALSE(bad.ok);
  const service::Response bad_combo = svc.handle_line(
      "select nodes=16 links=32 paths=24 algorithm=mat-rome optimizer=eager");
  EXPECT_FALSE(bad_combo.ok);
}

}  // namespace
}  // namespace rnt
