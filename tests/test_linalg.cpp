// Unit and property tests for the linear algebra substrate: matrix ops,
// elimination / rank / null space, the incremental basis oracle (validated
// against exact rational elimination), Cholesky basis selection, and SVD.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "linalg/cholesky.h"
#include "linalg/elimination.h"
#include "linalg/incremental_basis.h"
#include "linalg/matrix.h"
#include "linalg/rational.h"
#include "linalg/svd.h"
#include "util/rng.h"

namespace rnt::linalg {
namespace {

Matrix random_binary_matrix(std::size_t rows, std::size_t cols, double density,
                            Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    bool any = false;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        m(r, c) = 1.0;
        any = true;
      }
    }
    if (!any) m(r, rng.index(cols)) = 1.0;  // Avoid all-zero rows.
  }
  return m;
}

// --------------------------------------------------------------------------
// Matrix
// --------------------------------------------------------------------------

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  m(1, 2) = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(Matrix, AppendRowSetsWidthAndValidates) {
  Matrix m;
  const std::vector<double> r1 = {1, 0, 1};
  m.append_row(r1);
  EXPECT_EQ(m.cols(), 3u);
  const std::vector<double> bad = {1, 2};
  EXPECT_THROW(m.append_row(bad), std::invalid_argument);
}

TEST(Matrix, SelectRows) {
  Matrix m{{1, 0}, {0, 1}, {1, 1}};
  Matrix sub = m.select_rows({2, 0});
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_DOUBLE_EQ(sub(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(sub(1, 1), 0.0);
  EXPECT_THROW(m.select_rows({5}), std::out_of_range);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  Matrix m = random_binary_matrix(7, 4, 0.4, rng);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, MultiplyAgainstIdentity) {
  Rng rng(2);
  Matrix m = random_binary_matrix(5, 5, 0.5, rng);
  EXPECT_EQ(m.multiply(Matrix::identity(5)), m);
  EXPECT_EQ(Matrix::identity(5).multiply(m), m);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix expected{{19, 22}, {43, 50}};
  EXPECT_EQ(a.multiply(b), expected);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1, 0, 2}, {0, 3, 0}};
  const std::vector<double> x = {1, 2, 3};
  const auto y = a.multiply(std::span<const double>(x));
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a{{1, 2}};
  Matrix b{{1, 2}};
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
  EXPECT_THROW(a.max_abs_diff(Matrix(2, 2)), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Elimination: rank, null space, solve, identifiable columns
// --------------------------------------------------------------------------

TEST(Elimination, RankOfIdentity) {
  EXPECT_EQ(rank(Matrix::identity(6)), 6u);
}

TEST(Elimination, RankOfZeroAndEmpty) {
  EXPECT_EQ(rank(Matrix(3, 4)), 0u);
  EXPECT_EQ(rank(Matrix()), 0u);
}

TEST(Elimination, RankWithDependentRows) {
  Matrix m{{1, 0, 1}, {0, 1, 1}, {1, 1, 2}};  // row2 = row0 + row1
  EXPECT_EQ(rank(m), 2u);
}

TEST(Elimination, RankMatchesExactRationalOnRandomBinary) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t rows = 2 + rng.index(10);
    const std::size_t cols = 2 + rng.index(10);
    Matrix m = random_binary_matrix(rows, cols, 0.35, rng);
    EXPECT_EQ(rank(m), exact_rank(m)) << "trial " << trial;
  }
}

TEST(Elimination, RankOfRowsSubset) {
  Matrix m{{1, 0}, {0, 1}, {1, 1}};
  EXPECT_EQ(rank_of_rows(m, {0, 1}), 2u);
  EXPECT_EQ(rank_of_rows(m, {0, 2, 1}), 2u);
  EXPECT_EQ(rank_of_rows(m, {2}), 1u);
  EXPECT_EQ(rank_of_rows(m, {}), 0u);
}

TEST(Elimination, NullSpaceDimension) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t rows = 2 + rng.index(8);
    const std::size_t cols = 2 + rng.index(8);
    Matrix m = random_binary_matrix(rows, cols, 0.4, rng);
    const auto ns = null_space(m);
    EXPECT_EQ(ns.size(), cols - rank(m));
    // Every basis vector must actually be annihilated by m.
    for (const auto& v : ns) {
      const auto mv = m.multiply(std::span<const double>(v));
      for (double y : mv) EXPECT_NEAR(y, 0.0, 1e-8);
    }
  }
}

TEST(Elimination, NullSpaceOfEmptyRowSet) {
  Matrix m(0, 3);
  // With no constraints the entire R^3 is the null space.
  EXPECT_EQ(null_space(m).size(), 3u);
}

TEST(Elimination, SolveConsistentSystem) {
  Matrix a{{1, 1, 0}, {0, 1, 1}};
  // x = (1, 2, 3): y = (3, 5).
  const std::vector<double> y = {3, 5};
  const auto x = solve(a, y);
  ASSERT_TRUE(x.has_value());
  const auto yy = a.multiply(std::span<const double>(*x));
  EXPECT_NEAR(yy[0], 3.0, 1e-9);
  EXPECT_NEAR(yy[1], 5.0, 1e-9);
}

TEST(Elimination, SolveDetectsInconsistency) {
  Matrix a{{1, 0}, {1, 0}};
  const std::vector<double> y = {1, 2};  // x1 = 1 and x1 = 2: impossible.
  EXPECT_FALSE(solve(a, y).has_value());
}

TEST(Elimination, SolveRejectsBadRhs) {
  Matrix a{{1, 0}};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW(solve(a, y), std::invalid_argument);
}

TEST(Elimination, IdentifiableColumnsFullRankSquare) {
  const auto ids = identifiable_columns(Matrix::identity(4));
  EXPECT_EQ(ids.size(), 4u);
}

TEST(Elimination, IdentifiableColumnsPartial) {
  // x0 + x1 inseparable; x2 pinned.
  Matrix m{{1, 1, 0}, {0, 0, 1}};
  const auto ids = identifiable_columns(m);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 2u);
}

TEST(Elimination, IdentifiableColumnsSumAndDifference) {
  // x0+x1 and x0-x1 together identify both.
  Matrix m{{1, 1}, {1, -1}};
  EXPECT_EQ(identifiable_columns(m).size(), 2u);
}

TEST(Elimination, IndependentRowSubsetIsBasis) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m = random_binary_matrix(12, 8, 0.35, rng);
    const auto subset = independent_row_subset(m);
    EXPECT_EQ(subset.size(), rank(m));
    EXPECT_EQ(rank_of_rows(m, subset), subset.size());
  }
}

TEST(Elimination, IndependentRowSubsetRespectsOrder) {
  Matrix m{{1, 1, 0}, {1, 0, 0}, {0, 1, 0}};
  // Scanning in reverse order must pick rows 2 and 1 first.
  const auto subset = independent_row_subset(m, {2, 1, 0});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset[0], 2u);
  EXPECT_EQ(subset[1], 1u);
}

// --------------------------------------------------------------------------
// IncrementalBasis
// --------------------------------------------------------------------------

TEST(IncrementalBasis, MatchesBatchRankOnRandomMatrices) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rows = 3 + rng.index(12);
    const std::size_t cols = 3 + rng.index(10);
    Matrix m = random_binary_matrix(rows, cols, 0.4, rng);
    IncrementalBasis basis(cols);
    for (std::size_t r = 0; r < rows; ++r) {
      basis.try_add(m.row(r));
    }
    EXPECT_EQ(basis.rank(), rank(m)) << "trial " << trial;
  }
}

TEST(IncrementalBasis, IsIndependentDoesNotMutate) {
  Matrix m{{1, 0}, {0, 1}};
  IncrementalBasis basis(2);
  EXPECT_TRUE(basis.is_independent(m.row(0)));
  EXPECT_EQ(basis.rank(), 0u);
  basis.try_add(m.row(0));
  EXPECT_EQ(basis.rank(), 1u);
  EXPECT_FALSE(basis.is_independent(m.row(0)));
  EXPECT_TRUE(basis.is_independent(m.row(1)));
}

TEST(IncrementalBasis, DependencySupportRecoversCombination) {
  // r2 = r0 + r1, support must be {0, 1} with coefficients {1, 1}.
  Matrix m{{1, 0, 1, 0}, {0, 1, 0, 1}, {1, 1, 1, 1}};
  IncrementalBasis basis(4);
  EXPECT_TRUE(basis.try_add(m.row(0)));
  EXPECT_TRUE(basis.try_add(m.row(1)));
  const auto red = basis.reduce(m.row(2));
  EXPECT_FALSE(red.independent);
  ASSERT_EQ(red.support.size(), 2u);
  EXPECT_EQ(red.support[0], 0u);
  EXPECT_EQ(red.support[1], 1u);
  EXPECT_NEAR(red.coefficients[0], 1.0, 1e-9);
  EXPECT_NEAR(red.coefficients[1], 1.0, 1e-9);
}

TEST(IncrementalBasis, DependencySupportSparse) {
  // Four independent rows; a fifth depends only on rows 1 and 3.
  Matrix m{{1, 0, 0, 0, 1},
           {0, 1, 0, 0, 1},
           {0, 0, 1, 0, 0},
           {0, 0, 0, 1, 1},
           {0, 1, 0, 1, 2}};  // = row1 + row3
  IncrementalBasis basis(5);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(basis.try_add(m.row(r)));
  }
  const auto red = basis.reduce(m.row(4));
  EXPECT_FALSE(red.independent);
  ASSERT_EQ(red.support.size(), 2u);
  EXPECT_EQ(red.support[0], 1u);
  EXPECT_EQ(red.support[1], 3u);
}

TEST(IncrementalBasis, SupportReconstructsRowExactly) {
  // Property: for a dependent row r, sum(coeff_j * original_j) == r.
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t cols = 4 + rng.index(6);
    Matrix m = random_binary_matrix(10, cols, 0.4, rng);
    IncrementalBasis basis(cols);
    std::vector<std::size_t> members;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      const auto red = basis.add_with_reduction(m.row(r));
      if (red.independent) {
        members.push_back(r);
        continue;
      }
      std::vector<double> reconstructed(cols, 0.0);
      for (std::size_t k = 0; k < red.support.size(); ++k) {
        const auto src = m.row(members[red.support[k]]);
        for (std::size_t c = 0; c < cols; ++c) {
          reconstructed[c] += red.coefficients[k] * src[c];
        }
      }
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_NEAR(reconstructed[c], m(r, c), 1e-7);
      }
    }
  }
}

TEST(IncrementalBasis, ClearResets) {
  IncrementalBasis basis(3);
  const std::vector<double> v = {1, 0, 0};
  EXPECT_TRUE(basis.try_add(v));
  basis.clear();
  EXPECT_EQ(basis.rank(), 0u);
  EXPECT_TRUE(basis.try_add(v));
}

TEST(IncrementalBasis, DimensionMismatchThrows) {
  IncrementalBasis basis(3);
  const std::vector<double> v = {1, 0};
  EXPECT_THROW(basis.try_add(v), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Rational / exact rank
// --------------------------------------------------------------------------

TEST(Rational, ArithmeticAndNormalization) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(3, -6), Rational(-1, 2));
  EXPECT_EQ((-Rational(1, 2)).num(), -1);
}

TEST(Rational, ComparisonOrdering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(0), Rational(0, 5));
}

TEST(Rational, ErrorsAndOverflow) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
  EXPECT_THROW(Rational(1, 2) / Rational(0), std::domain_error);
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(Rational(big, 1) + Rational(big, 1), RationalOverflow);
}

TEST(Rational, ToStringAndDouble) {
  EXPECT_EQ(Rational(7).to_string(), "7");
  EXPECT_EQ(Rational(-3, 4).to_string(), "-3/4");
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

TEST(ExactRank, KnownMatrices) {
  EXPECT_EQ(exact_rank(Matrix::identity(5)), 5u);
  Matrix dep{{1, 1, 0}, {0, 1, 1}, {1, 2, 1}};
  EXPECT_EQ(exact_rank(dep), 2u);
}

TEST(ExactRank, RejectsNonIntegerEntries) {
  Matrix m{{0.5, 1.0}};
  EXPECT_THROW(exact_rank(m), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Cholesky basis selection
// --------------------------------------------------------------------------

TEST(Cholesky, BasisSizeEqualsRank) {
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    Matrix m = random_binary_matrix(10 + rng.index(10), 6 + rng.index(6),
                                    0.35, rng);
    const auto basis = cholesky_basis(m);
    EXPECT_EQ(basis.size(), rank(m));
    EXPECT_EQ(rank_of_rows(m, basis), basis.size());
  }
}

TEST(Cholesky, AgreesWithIncrementalBasisSelection) {
  Rng rng(56);
  Matrix m = random_binary_matrix(15, 8, 0.4, rng);
  std::vector<std::size_t> order(m.rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  EXPECT_EQ(cholesky_basis(m, order), independent_row_subset(m, order));
}

TEST(Cholesky, ResidualOfDependentRowIsZero) {
  Matrix m{{1, 0, 1}, {0, 1, 1}};
  IncrementalCholesky chol(3);
  EXPECT_TRUE(chol.try_add(m.row(0)));
  EXPECT_TRUE(chol.try_add(m.row(1)));
  const std::vector<double> dep = {1, 1, 2};  // row0 + row1
  EXPECT_NEAR(chol.residual(dep), 0.0, 1e-8);
  EXPECT_FALSE(chol.try_add(dep));
  EXPECT_EQ(chol.rank(), 2u);
}

// --------------------------------------------------------------------------
// SVD
// --------------------------------------------------------------------------

TEST(Svd, SingularValuesOfDiagonal) {
  Matrix m(3, 3);
  m(0, 0) = 3.0;
  m(1, 1) = 2.0;
  m(2, 2) = 1.0;
  const auto sv = singular_values(m);
  ASSERT_EQ(sv.size(), 3u);
  EXPECT_NEAR(sv[0], 3.0, 1e-9);
  EXPECT_NEAR(sv[1], 2.0, 1e-9);
  EXPECT_NEAR(sv[2], 1.0, 1e-9);
}

TEST(Svd, RankMatchesEliminationOnRandomBinary) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    Matrix m = random_binary_matrix(4 + rng.index(10), 4 + rng.index(10),
                                    0.4, rng);
    EXPECT_EQ(svd_rank(m), rank(m)) << "trial " << trial;
  }
}

TEST(Svd, FrobeniusNormPreserved) {
  // sum of squared singular values == squared Frobenius norm.
  Rng rng(78);
  Matrix m = random_binary_matrix(8, 5, 0.5, rng);
  double frob2 = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) frob2 += m(r, c) * m(r, c);
  }
  double sv2 = 0.0;
  for (double s : singular_values(m)) sv2 += s * s;
  EXPECT_NEAR(sv2, frob2, 1e-6);
}

TEST(Svd, TransposeInvariant) {
  Rng rng(79);
  Matrix m = random_binary_matrix(9, 4, 0.4, rng);
  const auto a = singular_values(m);
  const auto b = singular_values(m.transposed());
  ASSERT_EQ(a.size(), 4u);
  ASSERT_GE(b.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-8);
  }
}

TEST(Svd, EmptyMatrix) {
  EXPECT_TRUE(singular_values(Matrix()).empty());
  EXPECT_EQ(svd_rank(Matrix()), 0u);
  EXPECT_EQ(svd_rank(Matrix(3, 3)), 0u);  // Zero matrix.
}

}  // namespace
}  // namespace rnt::linalg
