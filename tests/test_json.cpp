// Tests for the minimal JSON reader/writer behind BENCH_*.json reports.
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/json.h"

namespace rnt::util {
namespace {

TEST(Json, BuildsAndDumpsStableObjects) {
  Json report = Json::object();
  report.set("suite", Json::string("micro_er_engines"));
  Json config = Json::object();
  config.set("paths", Json::number(64));
  config.set("scenarios", Json::number(50));
  report.set("config", std::move(config));
  Json ratios = Json::object();
  ratios.set("kernel_vs_scenario_evaluate", Json::number(6.5));
  report.set("ratios", std::move(ratios));

  const std::string text = report.dump();
  // Insertion order is preserved (diffable baselines).
  EXPECT_LT(text.find("suite"), text.find("config"));
  EXPECT_LT(text.find("config"), text.find("ratios"));
  EXPECT_NE(text.find("\"paths\": 64"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Json, ParseRoundTripsDump) {
  Json doc = Json::object();
  doc.set("name", Json::string("p50 \"quoted\"\nline"));
  doc.set("flag", Json::boolean(true));
  doc.set("none", Json());
  Json arr = Json::array();
  arr.push_back(Json::number(1.5));
  arr.push_back(Json::number(-3));
  arr.push_back(Json::number(1e-9));
  doc.set("values", std::move(arr));

  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.at("name").as_string(), "p50 \"quoted\"\nline");
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_TRUE(back.at("none").is_null());
  const auto& values = back.at("values").items();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0].as_number(), 1.5);
  EXPECT_DOUBLE_EQ(values[1].as_number(), -3.0);
  EXPECT_DOUBLE_EQ(values[2].as_number(), 1e-9);
}

TEST(Json, ParsesHandWrittenDocument) {
  const Json doc = Json::parse(R"({
    "metrics": {
      "kernel_evaluate": {"ops_per_sec": 1.25e4, "p50_us": 80.0}
    },
    "list": [true, false, null],
    "escaped": "a\tbA"
  })");
  EXPECT_DOUBLE_EQ(
      doc.at("metrics").at("kernel_evaluate").at("ops_per_sec").as_number(),
      1.25e4);
  EXPECT_EQ(doc.at("list").items().size(), 3u);
  EXPECT_EQ(doc.at("escaped").as_string(), "a\tbA");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("12 34"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
}

TEST(Json, TypeMismatchesThrow) {
  const Json n = Json::number(3.0);
  EXPECT_THROW(n.as_string(), std::runtime_error);
  EXPECT_THROW(n.items(), std::runtime_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(Json()), std::runtime_error);
  obj.set("k", Json::number(1));
  obj.set("k", Json::number(2));  // set replaces in place.
  EXPECT_DOUBLE_EQ(obj.at("k").as_number(), 2.0);
  EXPECT_EQ(obj.members().size(), 1u);
}

}  // namespace
}  // namespace rnt::util
