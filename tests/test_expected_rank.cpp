// Tests for the Expected Rank engines, including the paper's structural
// theorems as executable properties: ER is non-decreasing and submodular
// with ER(empty) = 0 (Theorem 5 and its lemma), ER is modular on linearly
// independent sets (Lemma 8), and the ProbBound of Eq. 7 upper-bounds the
// true ER while matching it exactly when no dependent paths are present.
#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_rank.h"
#include "failures/failure_model.h"
#include "graph/generators.h"
#include "graph/isp_topology.h"
#include "linalg/elimination.h"
#include "tomo/monitors.h"
#include "util/rng.h"

namespace rnt::core {
namespace {

/// Small fixture: a ring-with-chords topology (12 links) so exact 2^|E|
/// enumeration stays fast, with a Markopoulou-like failure model.
struct SmallWorld {
  graph::Graph graph{0};
  std::unique_ptr<tomo::PathSystem> system;
  std::unique_ptr<failures::FailureModel> model;

  explicit SmallWorld(std::uint64_t seed, double intensity = 3.0) {
    Rng rng(seed);
    graph = graph::ring_with_chords(8, 4, rng);
    system = std::make_unique<tomo::PathSystem>(
        tomo::build_path_system(graph, 12, rng));
    model = std::make_unique<failures::FailureModel>(
        failures::markopoulou_model(graph.edge_count(), rng, intensity));
  }
};

std::vector<std::size_t> random_subset(std::size_t n, Rng& rng,
                                       double density = 0.5) {
  std::vector<std::size_t> subset;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(density)) subset.push_back(i);
  }
  return subset;
}

// --------------------------------------------------------------------------
// ExactEr basics
// --------------------------------------------------------------------------

TEST(ExactEr, EmptySetIsZero) {
  SmallWorld w(1);
  ExactEr er(*w.system, *w.model);
  EXPECT_DOUBLE_EQ(er.evaluate({}), 0.0);
}

TEST(ExactEr, SinglePathEqualsAvailability) {
  SmallWorld w(2);
  ExactEr er(*w.system, *w.model);
  for (std::size_t q = 0; q < w.system->path_count(); ++q) {
    EXPECT_NEAR(er.evaluate({q}), w.system->expected_availability(q, *w.model),
                1e-9)
        << "path " << q;
  }
}

TEST(ExactEr, NoFailuresGivesPlainRank) {
  SmallWorld w(3);
  const auto zero = failures::uniform_model(w.graph.edge_count(), 0.0);
  ExactEr er(*w.system, zero);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_NEAR(er.evaluate(all), static_cast<double>(w.system->full_rank()),
              1e-9);
}

TEST(ExactEr, CertainFailureGivesZero) {
  SmallWorld w(4);
  const auto one = failures::uniform_model(w.graph.edge_count(), 1.0);
  ExactEr er(*w.system, one);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_NEAR(er.evaluate(all), 0.0, 1e-12);
}

TEST(ExactEr, GuardsLargeLinkCounts) {
  Rng rng(5);
  graph::Graph g = graph::build_isp_like(30, 60, rng);
  tomo::PathSystem sys = tomo::build_path_system(g, 20, rng);
  const auto model = failures::uniform_model(g.edge_count(), 0.1);
  EXPECT_THROW(ExactEr(sys, model), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Paper theorems as properties (exact engine)
// --------------------------------------------------------------------------

TEST(ErProperties, NonDecreasing) {
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    SmallWorld w(seed);
    ExactEr er(*w.system, *w.model);
    Rng rng(seed * 7);
    auto subset = random_subset(w.system->path_count(), rng, 0.4);
    double prev = er.evaluate(subset);
    for (std::size_t q = 0; q < w.system->path_count(); ++q) {
      if (std::find(subset.begin(), subset.end(), q) != subset.end()) continue;
      auto bigger = subset;
      bigger.push_back(q);
      const double now = er.evaluate(bigger);
      EXPECT_GE(now + 1e-9, prev) << "adding path " << q;
      subset = bigger;
      prev = now;
    }
  }
}

TEST(ErProperties, SubmodularityTheorem5) {
  // f(A+q) - f(A) >= f(B+q) - f(B) for all A subset of B, q outside B.
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    SmallWorld w(seed);
    ExactEr er(*w.system, *w.model);
    Rng rng(seed * 13);
    for (int trial = 0; trial < 10; ++trial) {
      const auto b = random_subset(w.system->path_count(), rng, 0.5);
      std::vector<std::size_t> a;
      for (std::size_t q : b) {
        if (rng.bernoulli(0.5)) a.push_back(q);
      }
      // Pick q outside B.
      std::vector<std::size_t> outside;
      for (std::size_t q = 0; q < w.system->path_count(); ++q) {
        if (std::find(b.begin(), b.end(), q) == b.end()) outside.push_back(q);
      }
      if (outside.empty()) continue;
      const std::size_t q = outside[rng.index(outside.size())];
      auto aq = a;
      aq.push_back(q);
      auto bq = b;
      bq.push_back(q);
      const double gain_a = er.evaluate(aq) - er.evaluate(a);
      const double gain_b = er.evaluate(bq) - er.evaluate(b);
      EXPECT_GE(gain_a + 1e-9, gain_b);
    }
  }
}

TEST(ErProperties, ModularOnIndependentSetsLemma8) {
  for (std::uint64_t seed = 30; seed < 34; ++seed) {
    SmallWorld w(seed);
    ExactEr er(*w.system, *w.model);
    // A maximal independent subset of the candidate paths.
    const auto basis = linalg::independent_row_subset(w.system->matrix());
    double sum_ea = 0.0;
    for (std::size_t q : basis) {
      sum_ea += w.system->expected_availability(q, *w.model);
    }
    EXPECT_NEAR(er.evaluate(basis), sum_ea, 1e-9);
  }
}

// --------------------------------------------------------------------------
// ProbBound (Eq. 6/7)
// --------------------------------------------------------------------------

TEST(ProbBound, UpperBoundsExactEr) {
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    SmallWorld w(seed);
    ExactEr exact(*w.system, *w.model);
    ProbBoundEr bound(*w.system, *w.model);
    Rng rng(seed);
    for (int trial = 0; trial < 8; ++trial) {
      const auto subset = random_subset(w.system->path_count(), rng, 0.6);
      EXPECT_GE(bound.evaluate(subset) + 1e-9, exact.evaluate(subset))
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(ProbBound, ExactOnIndependentSets) {
  SmallWorld w(50);
  ExactEr exact(*w.system, *w.model);
  ProbBoundEr bound(*w.system, *w.model);
  const auto basis = linalg::independent_row_subset(w.system->matrix());
  EXPECT_NEAR(bound.evaluate(basis), exact.evaluate(basis), 1e-9);
}

TEST(ProbBound, SingleDependentPathIsExact) {
  // With exactly one dependent path Eq. 6 is exact, not just a bound.
  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    SmallWorld w(seed);
    const auto basis = linalg::independent_row_subset(w.system->matrix());
    // Find one path outside the basis (dependent on it).
    std::vector<std::size_t> extra;
    for (std::size_t q = 0; q < w.system->path_count(); ++q) {
      if (std::find(basis.begin(), basis.end(), q) == basis.end()) {
        extra.push_back(q);
      }
    }
    if (extra.empty()) continue;
    auto subset = basis;
    subset.push_back(extra.front());
    ExactEr exact(*w.system, *w.model);
    ProbBoundEr bound(*w.system, *w.model);
    EXPECT_NEAR(bound.evaluate(subset), exact.evaluate(subset), 1e-9)
        << "seed " << seed;
  }
}

TEST(ProbBound, AvailabilityAccessor) {
  SmallWorld w(55);
  ProbBoundEr bound(*w.system, *w.model);
  for (std::size_t q = 0; q < w.system->path_count(); ++q) {
    EXPECT_NEAR(bound.availability(q),
                w.system->expected_availability(q, *w.model), 1e-12);
  }
}

// --------------------------------------------------------------------------
// Monte Carlo engine
// --------------------------------------------------------------------------

TEST(MonteCarlo, ConvergesToExact) {
  SmallWorld w(70);
  ExactEr exact(*w.system, *w.model);
  Rng rng(70);
  MonteCarloEr mc(*w.system, *w.model, 4000, rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double truth = exact.evaluate(all);
  EXPECT_NEAR(mc.evaluate(all), truth, 0.05 * truth + 0.2);
}

TEST(MonteCarlo, FewRunsStillValidRange) {
  SmallWorld w(71);
  Rng rng(71);
  MonteCarloEr mc(*w.system, *w.model, 50, rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double est = mc.evaluate(all);
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, static_cast<double>(w.system->full_rank()));
}

TEST(MonteCarlo, ValidatesArguments) {
  SmallWorld w(72);
  Rng rng(72);
  EXPECT_THROW(MonteCarloEr(*w.system, *w.model, 0, rng),
               std::invalid_argument);
}

TEST(MonteCarlo, DeterministicGivenRngState) {
  SmallWorld w(73);
  Rng rng1(9);
  Rng rng2(9);
  MonteCarloEr a(*w.system, *w.model, 100, rng1);
  MonteCarloEr b(*w.system, *w.model, 100, rng2);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_DOUBLE_EQ(a.evaluate(all), b.evaluate(all));
}

TEST(MonteCarlo, ParallelEvaluateMatchesSerial) {
  SmallWorld w(74);
  Rng rng(74);
  MonteCarloEr mc(*w.system, *w.model, 500, rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double serial = mc.evaluate(all);
  for (std::size_t threads : {1u, 2u, 3u, 7u}) {
    EXPECT_NEAR(mc.evaluate_parallel(all, threads), serial, 1e-9)
        << threads << " threads";
  }
  // Default thread count also agrees.
  EXPECT_NEAR(mc.evaluate_parallel(all), serial, 1e-9);
}

TEST(MonteCarlo, ParallelEvaluateBitwiseEqualAcrossThreadCounts) {
  // evaluate() and evaluate_parallel() both sum fixed 64-scenario chunks
  // and reduce them in chunk order, so the parallel answer is bitwise
  // identical to the serial one at every worker count — not merely close.
  SmallWorld w(76);
  Rng rng(76);
  // 333 scenarios: several chunks plus a ragged tail.
  MonteCarloEr mc(*w.system, *w.model, 333, rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double serial = mc.evaluate(all);
  for (std::size_t threads : {1u, 2u, 3u, 7u, 8u}) {
    EXPECT_EQ(mc.evaluate_parallel(all, threads), serial)
        << threads << " threads";
  }
  Rng sub_rng(77);
  const auto subset = random_subset(w.system->path_count(), sub_rng);
  EXPECT_EQ(mc.evaluate_parallel(subset, 8), mc.evaluate(subset));
}

TEST(MonteCarlo, ParallelEvaluateEdgeCases) {
  SmallWorld w(75);
  Rng rng(75);
  MonteCarloEr mc(*w.system, *w.model, 3, rng);  // Fewer scenarios than threads.
  std::vector<std::size_t> subset = {0, 1};
  EXPECT_NEAR(mc.evaluate_parallel(subset, 16), mc.evaluate(subset), 1e-12);
  EXPECT_NEAR(mc.evaluate_parallel({}, 4), 0.0, 1e-12);
}

// --------------------------------------------------------------------------
// Accumulators: gains must match evaluate() differences
// --------------------------------------------------------------------------

class AccumulatorConsistency
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AccumulatorConsistency, GainsMatchEvaluateDeltas) {
  SmallWorld w(80);
  Rng rng(80);
  std::unique_ptr<ErEngine> engine;
  const std::string which = GetParam();
  if (which == "exact") {
    engine = std::make_unique<ExactEr>(*w.system, *w.model);
  } else if (which == "mc") {
    engine = std::make_unique<MonteCarloEr>(*w.system, *w.model, 200, rng);
  } else if (which == "bound") {
    engine = std::make_unique<ProbBoundEr>(*w.system, *w.model);
  } else {
    std::vector<double> theta(w.system->path_count());
    for (std::size_t q = 0; q < theta.size(); ++q) {
      theta[q] = w.system->expected_availability(q, *w.model);
    }
    engine = std::make_unique<IndependentPathEr>(*w.system, theta);
  }

  auto acc = engine->make_accumulator();
  std::vector<std::size_t> selected;
  Rng order_rng(81);
  std::vector<std::size_t> order(w.system->path_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  order_rng.shuffle(order);
  for (std::size_t q : order) {
    const double before = engine->evaluate(selected);
    auto with = selected;
    with.push_back(q);
    const double after = engine->evaluate(with);
    EXPECT_NEAR(acc->gain(q), after - before, 1e-9)
        << which << " path " << q << " at size " << selected.size();
    acc->add(q);
    selected = with;
    EXPECT_NEAR(acc->value(), after, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, AccumulatorConsistency,
                         ::testing::Values("exact", "mc", "bound", "indep"));

// --------------------------------------------------------------------------
// IndependentPathEr (Eq. 11)
// --------------------------------------------------------------------------

TEST(IndependentPathEr, IndependentPathsSumTheta) {
  SmallWorld w(90);
  std::vector<double> theta(w.system->path_count(), 0.0);
  for (std::size_t q = 0; q < theta.size(); ++q) {
    theta[q] = 0.1 + 0.05 * static_cast<double>(q % 10);
  }
  IndependentPathEr er(*w.system, theta);
  const auto basis = linalg::independent_row_subset(w.system->matrix());
  double expected = 0.0;
  for (std::size_t q : basis) expected += theta[q];
  EXPECT_NEAR(er.evaluate(basis), expected, 1e-9);
}

TEST(IndependentPathEr, ClampsOptimisticTheta) {
  // UCB estimates theta + bonus can exceed 1; contributions must clamp.
  SmallWorld w(91);
  std::vector<double> theta(w.system->path_count(), 2.5);
  IndependentPathEr er(*w.system, theta);
  const auto basis = linalg::independent_row_subset(w.system->matrix());
  EXPECT_NEAR(er.evaluate(basis), static_cast<double>(basis.size()), 1e-9);
}

TEST(IndependentPathEr, DependentPathFormula) {
  // Three disjoint single-link paths 0,1 and a path equal to 0+1.
  std::vector<tomo::ProbePath> paths(3);
  paths[0].links = {0};
  paths[0].hops = 1;
  paths[1].links = {1};
  paths[1].hops = 1;
  paths[2].links = {0, 1};
  paths[2].hops = 2;
  tomo::PathSystem sys(2, paths);
  const std::vector<double> theta = {0.9, 0.8, 0.7};
  IndependentPathEr er(sys, theta);
  // ER({0,1,2}) = 0.9 + 0.8 + 0.7 * (1 - 0.9*0.8).
  EXPECT_NEAR(er.evaluate({0, 1, 2}), 0.9 + 0.8 + 0.7 * (1 - 0.72), 1e-9);
}

TEST(IndependentPathEr, SizeMismatchThrows) {
  SmallWorld w(92);
  EXPECT_THROW(IndependentPathEr(*w.system, std::vector<double>{0.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rnt::core
