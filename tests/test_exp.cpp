// Tests for the experiment-support extensions: failure traces (record /
// replay / persistence / statistics) and CSV data series.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "exp/series.h"
#include "failures/trace.h"
#include "util/rng.h"

namespace rnt {
namespace {

// --------------------------------------------------------------------------
// FailureTrace
// --------------------------------------------------------------------------

TEST(FailureTrace, AppendAndAccess) {
  failures::FailureTrace trace(3);
  trace.append({true, false, false});
  trace.append({false, true, true});
  EXPECT_EQ(trace.epoch_count(), 2u);
  EXPECT_TRUE(trace.epoch(0)[0]);
  EXPECT_TRUE(trace.epoch(1)[2]);
  EXPECT_THROW(trace.append({true}), std::invalid_argument);
}

TEST(FailureTrace, CyclicAccess) {
  failures::FailureTrace trace(2);
  trace.append({true, false});
  trace.append({false, true});
  EXPECT_EQ(trace.cyclic(0), trace.epoch(0));
  EXPECT_EQ(trace.cyclic(5), trace.epoch(1));
  failures::FailureTrace empty(2);
  EXPECT_THROW(empty.cyclic(0), std::logic_error);
}

TEST(FailureTrace, Statistics) {
  failures::FailureTrace trace(2);
  trace.append({true, false});
  trace.append({true, true});
  trace.append({false, false});
  EXPECT_NEAR(trace.empirical_failure_rate(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(trace.empirical_failure_rate(1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(trace.mean_concurrent_failures(), 1.0, 1e-12);
  EXPECT_THROW(trace.empirical_failure_rate(5), std::out_of_range);
}

TEST(FailureTrace, RecordMatchesModelStatistically) {
  const failures::FailureModel model({0.3, 0.05});
  Rng rng(1);
  const auto trace = failures::FailureTrace::record(model, 20000, rng);
  EXPECT_EQ(trace.epoch_count(), 20000u);
  EXPECT_NEAR(trace.empirical_failure_rate(0), 0.3, 0.02);
  EXPECT_NEAR(trace.empirical_failure_rate(1), 0.05, 0.01);
}

TEST(FailureTrace, StreamRoundTrip) {
  failures::FailureTrace trace(4);
  trace.append({false, false, false, false});
  trace.append({true, false, true, false});
  trace.append({false, false, false, true});
  std::stringstream buffer;
  trace.write(buffer);
  const auto loaded = failures::FailureTrace::read(buffer);
  EXPECT_EQ(loaded, trace);
}

TEST(FailureTrace, FileRoundTrip) {
  const std::string path = "/tmp/rnt_test_trace.txt";
  Rng rng(2);
  const auto model = failures::uniform_model(6, 0.4);
  const auto trace = failures::FailureTrace::record(model, 25, rng);
  trace.save(path);
  const auto loaded = failures::FailureTrace::load(path);
  EXPECT_EQ(loaded, trace);
  std::remove(path.c_str());
  EXPECT_THROW(failures::FailureTrace::load("/nonexistent/trace"),
               std::runtime_error);
}

TEST(FailureTrace, ReadValidatesInput) {
  std::istringstream no_header("# only a comment\n");
  EXPECT_THROW(failures::FailureTrace::read(no_header), std::runtime_error);
  std::istringstream bad_link("3\n0 7\n");
  EXPECT_THROW(failures::FailureTrace::read(bad_link), std::runtime_error);
  std::istringstream bad_count("zebra\n");
  EXPECT_THROW(failures::FailureTrace::read(bad_count), std::runtime_error);
}

// --------------------------------------------------------------------------
// SeriesTable
// --------------------------------------------------------------------------

TEST(SeriesTable, BuildAndQuery) {
  exp::SeriesTable t("budget", {"rome", "selectpath"});
  t.add_row(0.1, {10.0, 7.0});
  t.add_row(0.2, {20.0, 12.0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.series_count(), 2u);
  EXPECT_DOUBLE_EQ(t.x(1), 0.2);
  EXPECT_DOUBLE_EQ(t.value(1, 0), 20.0);
  EXPECT_EQ(t.series("selectpath"), (std::vector<double>{7.0, 12.0}));
  EXPECT_THROW(t.series("nope"), std::invalid_argument);
  EXPECT_THROW(t.add_row(0.3, {1.0}), std::invalid_argument);
}

TEST(SeriesTable, ValidatesConstruction) {
  EXPECT_THROW(exp::SeriesTable("x", {}), std::invalid_argument);
  EXPECT_THROW(exp::SeriesTable("x", {"a,b"}), std::invalid_argument);
  EXPECT_THROW(exp::SeriesTable("x", {""}), std::invalid_argument);
}

TEST(SeriesTable, CsvRoundTripPreservesPrecision) {
  exp::SeriesTable t("k", {"value"});
  t.add_row(1.0, {1.0 / 3.0});
  t.add_row(2.0, {0.1234567890123456});
  std::stringstream buffer;
  t.write_csv(buffer);
  const auto loaded = exp::SeriesTable::read_csv(buffer);
  EXPECT_EQ(loaded, t);
}

TEST(SeriesTable, FileRoundTrip) {
  const std::string path = "/tmp/rnt_test_series.csv";
  exp::SeriesTable t("epoch", {"lsr", "thompson"});
  for (int i = 1; i <= 5; ++i) {
    t.add_row(i, {i * 1.5, i * 2.0});
  }
  t.save_csv(path);
  const auto loaded = exp::SeriesTable::load_csv(path);
  EXPECT_EQ(loaded, t);
  std::remove(path.c_str());
}

TEST(SeriesTable, ReadValidatesInput) {
  std::istringstream empty("");
  EXPECT_THROW(exp::SeriesTable::read_csv(empty), std::runtime_error);
  std::istringstream one_col("justx\n1\n");
  EXPECT_THROW(exp::SeriesTable::read_csv(one_col), std::runtime_error);
  std::istringstream bad_number("x,y\n1,zebra\n");
  EXPECT_THROW(exp::SeriesTable::read_csv(bad_number), std::runtime_error);
  std::istringstream ragged("x,y\n1,2,3\n");
  EXPECT_THROW(exp::SeriesTable::read_csv(ragged), std::runtime_error);
}

}  // namespace
}  // namespace rnt
