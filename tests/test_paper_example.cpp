// Executable version of the paper's illustrative example (Section II-B,
// Figures 1-2): a small topology with 8 nodes, 8 links and 6 monitors where
// every basis identifies all links when nothing fails, but bases differ
// dramatically in robustness to the failure of the inter-hub link l7.
//
// Topology (our reconstruction of the example's structure):
//
//   m1 --l1--\                /--l4-- m4
//   m2 --l2-- c1 ----l7---- c2 --l5-- m5
//   m3 --l3--/      ___________--l6-- m6
//         \--------l8-------/
//
// Nodes: m1..m6 = 0..5, hubs c1 = 6, c2 = 7.  Link l8 (m3-c2) provides an
// alternative crossing, so the candidate set (all 15 monitor pairs, routed
// by shortest path) has full rank 8.  A basis loaded with l7-crossing paths
// collapses when l7 fails; a robust basis loses only one path and keeps
// every link except l7 identifiable — exactly the paper's narrative.
#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_rank.h"
#include "core/matrome.h"
#include "core/rome.h"
#include "failures/failure_model.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "tomo/identifiability.h"
#include "tomo/path_system.h"

namespace rnt {
namespace {

constexpr graph::NodeId kM1 = 0, kM2 = 1, kM3 = 2, kM4 = 3, kM5 = 4, kM6 = 5;
constexpr graph::NodeId kC1 = 6, kC2 = 7;

// Link ids follow insertion order below.
constexpr graph::EdgeId kL1 = 0, kL2 = 1, kL3 = 2, kL4 = 3, kL5 = 4, kL6 = 5,
                        kL7 = 6, kL8 = 7;

graph::Graph example_graph() {
  graph::Graph g(8);
  g.add_edge(kM1, kC1);  // l1
  g.add_edge(kM2, kC1);  // l2
  g.add_edge(kM3, kC1);  // l3
  g.add_edge(kM4, kC2);  // l4
  g.add_edge(kM5, kC2);  // l5
  g.add_edge(kM6, kC2);  // l6
  g.add_edge(kC1, kC2);  // l7
  g.add_edge(kM3, kC2);  // l8
  return g;
}

/// All 15 monitor-pair shortest paths (monitors act as both sources and
/// destinations, as in the paper's example).
tomo::PathSystem example_system() {
  const graph::Graph g = example_graph();
  std::vector<tomo::ProbePath> paths;
  for (graph::NodeId a = kM1; a <= kM6; ++a) {
    for (graph::NodeId b = a + 1; b <= kM6; ++b) {
      const auto routed = graph::shortest_path(g, a, b);
      paths.push_back(tomo::make_probe_path(*routed));
    }
  }
  return tomo::PathSystem(g.edge_count(), std::move(paths));
}

/// Index of the path between monitors a and b in the pair enumeration.
std::size_t pair_index(graph::NodeId a, graph::NodeId b) {
  if (a > b) std::swap(a, b);
  std::size_t idx = 0;
  for (graph::NodeId x = kM1; x <= kM6; ++x) {
    for (graph::NodeId y = x + 1; y <= kM6; ++y) {
      if (x == a && y == b) return idx;
      ++idx;
    }
  }
  throw std::logic_error("not a monitor pair");
}

class PaperExample : public ::testing::Test {
 protected:
  PaperExample() : system_(example_system()) {}

  tomo::PathSystem system_;
  // The fragile basis R1: four independent l7-crossing paths plus the four
  // fillers needed to reach rank 8 (l1..l6 pairs, l3 and l8 coverage).
  std::vector<std::size_t> fragile_basis() const {
    return {pair_index(kM1, kM4), pair_index(kM1, kM5), pair_index(kM1, kM6),
            pair_index(kM2, kM4), pair_index(kM1, kM2), pair_index(kM4, kM5),
            pair_index(kM1, kM3), pair_index(kM3, kM4)};
  }
  // No rank-8 basis avoids l7 entirely (l7 is only coverable by a crossing
  // path), but the robust basis R2 uses exactly one.
  std::vector<std::size_t> robust_basis() const {
    return {pair_index(kM1, kM2), pair_index(kM1, kM3), pair_index(kM2, kM3),
            pair_index(kM4, kM5), pair_index(kM4, kM6), pair_index(kM5, kM6),
            pair_index(kM3, kM4), pair_index(kM1, kM4)};
  }
  failures::FailureVector l7_fails() const {
    failures::FailureVector v(8, false);
    v[kL7] = true;
    return v;
  }
};

TEST_F(PaperExample, FifteenCandidatePathsRankEight) {
  EXPECT_EQ(system_.path_count(), 15u);
  EXPECT_EQ(system_.link_count(), 8u);
  EXPECT_EQ(system_.full_rank(), 8u);
}

TEST_F(PaperExample, RoutingMatchesFigure) {
  // Same-side pairs: two hops through the shared hub.
  EXPECT_EQ(system_.path(pair_index(kM1, kM2)).links,
            (std::vector<graph::EdgeId>{kL1, kL2}));
  // Cross pairs from m1/m2: through l7.
  EXPECT_EQ(system_.path(pair_index(kM1, kM4)).links,
            (std::vector<graph::EdgeId>{kL1, kL4, kL7}));
  // m3's cross pairs take the l8 shortcut instead of l3+l7.
  EXPECT_EQ(system_.path(pair_index(kM3, kM4)).links,
            (std::vector<graph::EdgeId>{kL4, kL8}));
}

TEST_F(PaperExample, AllLinksIdentifiableWithoutFailures) {
  std::vector<std::size_t> all(system_.path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_EQ(tomo::identifiable_count(system_, all), 8u);
  // Both bases individually identify everything too (each has rank 8 over
  // 8 unknowns).
  EXPECT_EQ(tomo::identifiable_count(system_, fragile_basis()), 8u);
  EXPECT_EQ(tomo::identifiable_count(system_, robust_basis()), 8u);
}

TEST_F(PaperExample, BothBasesAreBases) {
  EXPECT_EQ(system_.rank_of(fragile_basis()), 8u);
  EXPECT_EQ(system_.rank_of(robust_basis()), 8u);
}

TEST_F(PaperExample, FragileBasisCollapsesUnderL7) {
  const auto v = l7_fails();
  const auto survivors = system_.surviving_rows(fragile_basis(), v);
  // All four l7-crossing paths die; the four fillers survive, but their
  // link sums cannot pin down any individual link metric.
  EXPECT_EQ(survivors.size(), 4u);
  EXPECT_EQ(system_.rank_of(survivors), 4u);
  EXPECT_EQ(tomo::identifiable_links(system_, survivors).size(), 0u);
}

TEST_F(PaperExample, RobustBasisLosesOnlyL7) {
  const auto v = l7_fails();
  const auto survivors = system_.surviving_rows(robust_basis(), v);
  // Only the single crossing path m1-m4 is lost.
  EXPECT_EQ(survivors.size(), 7u);
  EXPECT_EQ(system_.rank_of(survivors), 7u);
  // Every link except the failed l7 stays identifiable (paper: "uniquely
  // identifies the metrics of all links except l7").
  const auto ids = tomo::identifiable_links(system_, survivors);
  EXPECT_EQ(ids.size(), 7u);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), kL7), 0);
}

TEST_F(PaperExample, ExpectedRankPrefersRobustBasis) {
  // Failure model concentrated on l7 (the example's failure-prone link).
  std::vector<double> p(8, 0.01);
  p[kL7] = 0.3;
  const failures::FailureModel model(p);
  core::ExactEr er(system_, model);
  EXPECT_GT(er.evaluate(robust_basis()), er.evaluate(fragile_basis()) + 0.5);
}

TEST_F(PaperExample, MatRoMeFindsARobustBasis) {
  std::vector<double> p(8, 0.01);
  p[kL7] = 0.3;
  const failures::FailureModel model(p);
  const auto selection = core::matrome(system_, model);
  ASSERT_EQ(selection.paths.size(), 8u);
  // At most one selected path may cross l7: crossing paths have low EA and
  // a second one adds nothing that same-side paths cannot.
  std::size_t crossing = 0;
  for (std::size_t q : selection.paths) {
    const auto& links = system_.path(q).links;
    if (std::find(links.begin(), links.end(), kL7) != links.end()) ++crossing;
  }
  EXPECT_LE(crossing, 1u);
  // Under the l7 failure, MatRoMe's basis retains rank >= 7.
  EXPECT_GE(system_.rank_of(system_.surviving_rows(selection.paths,
                                                   l7_fails())),
            7u);
}

TEST_F(PaperExample, RoMeBeatsFragileBasisAtEqualBudget) {
  std::vector<double> p(8, 0.01);
  p[kL7] = 0.3;
  const failures::FailureModel model(p);
  core::ExactEr er(system_, model);
  const tomo::CostModel unit = tomo::CostModel::unit();
  const auto selection = core::rome(system_, unit, 8.0, er);
  EXPECT_LE(selection.paths.size(), 8u);
  EXPECT_GE(er.evaluate(selection.paths),
            er.evaluate(fragile_basis()) + 0.5);
}

TEST_F(PaperExample, FailedLinkIsLocalizable) {
  // The paper notes that observing which robust-basis path failed localizes
  // the failure: with R2, only paths containing l7 can explain q(m1,m4)
  // failing while everything else survives.
  const auto v = l7_fails();
  std::vector<std::size_t> failed_paths;
  for (std::size_t q : robust_basis()) {
    if (!system_.path_survives(q, v)) failed_paths.push_back(q);
  }
  ASSERT_EQ(failed_paths.size(), 1u);
  // Candidate culprit links: links of the failed path not on any surviving
  // selected path.
  const auto survivors = system_.surviving_rows(robust_basis(), v);
  std::vector<bool> exonerated(system_.link_count(), false);
  for (std::size_t q : survivors) {
    for (graph::EdgeId l : system_.path(q).links) exonerated[l] = true;
  }
  std::vector<graph::EdgeId> culprits;
  for (graph::EdgeId l : system_.path(failed_paths[0]).links) {
    if (!exonerated[l]) culprits.push_back(l);
  }
  ASSERT_EQ(culprits.size(), 1u);
  EXPECT_EQ(culprits[0], kL7);
}

}  // namespace
}  // namespace rnt
