// Tests for the selection algorithms: RoMe (lazy and eager, approximation
// guarantee against the exhaustive optimum), MatRoMe (matroid optimality),
// the SelectPath baseline, and the exhaustive oracle itself.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/exhaustive.h"
#include "core/expected_rank.h"
#include "core/matrome.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "graph/generators.h"
#include "linalg/elimination.h"
#include "linalg/incremental_basis.h"
#include "tomo/monitors.h"
#include "util/rng.h"

namespace rnt::core {
namespace {

struct SmallWorld {
  graph::Graph graph{0};
  std::unique_ptr<tomo::PathSystem> system;
  std::unique_ptr<failures::FailureModel> model;

  explicit SmallWorld(std::uint64_t seed, std::size_t paths = 10,
                      double intensity = 3.0, std::size_t nodes = 8,
                      std::size_t chords = 4) {
    Rng rng(seed);
    graph = graph::ring_with_chords(nodes, chords, rng);
    system = std::make_unique<tomo::PathSystem>(
        tomo::build_path_system(graph, paths, rng));
    model = std::make_unique<failures::FailureModel>(
        failures::markopoulou_model(graph.edge_count(), rng, intensity));
  }
};

/// Disjoint single-link paths: the Knapsack-reduction shape used in the
/// NP-hardness proof (Theorem 3).  link i <-> item i.
tomo::PathSystem disjoint_paths(std::size_t n) {
  std::vector<tomo::ProbePath> paths(n);
  for (std::size_t i = 0; i < n; ++i) {
    paths[i].source = static_cast<graph::NodeId>(2 * i);
    paths[i].destination = static_cast<graph::NodeId>(2 * i + 1);
    paths[i].links = {static_cast<graph::EdgeId>(i)};
    paths[i].hops = 1;
  }
  return tomo::PathSystem(n, paths);
}

// --------------------------------------------------------------------------
// RoMe
// --------------------------------------------------------------------------

TEST(Rome, RespectsBudget) {
  SmallWorld w(1);
  tomo::CostModel costs(10.0, {});
  ProbBoundEr engine(*w.system, *w.model);
  for (double budget : {0.0, 25.0, 60.0, 1000.0}) {
    const Selection s = rome(*w.system, costs, budget, engine);
    EXPECT_LE(s.cost, budget + 1e-9);
    // No duplicate selections.
    std::set<std::size_t> unique(s.paths.begin(), s.paths.end());
    EXPECT_EQ(unique.size(), s.paths.size());
  }
}

TEST(Rome, ZeroBudgetSelectsNothing) {
  SmallWorld w(2);
  tomo::CostModel costs(10.0, {});
  ProbBoundEr engine(*w.system, *w.model);
  const Selection s = rome(*w.system, costs, 0.0, engine);
  EXPECT_TRUE(s.empty());
}

TEST(Rome, LargeBudgetSelectsEverything) {
  SmallWorld w(3);
  tomo::CostModel costs(1.0, {});
  ProbBoundEr engine(*w.system, *w.model);
  const Selection s = rome(*w.system, costs, 1e9, engine);
  EXPECT_EQ(s.paths.size(), w.system->path_count());
}

TEST(Rome, ApproximationGuaranteeAgainstExhaustiveOptimum) {
  // Theorem 6: greedy + best-singleton achieves >= (1 - 1/sqrt(e)) OPT.
  const double factor = 1.0 - 1.0 / std::sqrt(std::exp(1.0));
  for (std::uint64_t seed = 10; seed < 20; ++seed) {
    // Tiny instance (8 links, 8 paths) so the 2^N exhaustive oracle with a
    // 2^|E| exact engine stays fast.
    SmallWorld w(seed, /*paths=*/8, /*intensity=*/3.0, /*nodes=*/6,
                 /*chords=*/2);
    Rng cost_rng(seed);
    // Heterogeneous costs in [1, 10].
    std::unordered_map<graph::NodeId, double> access;
    for (graph::NodeId n = 0; n < w.graph.node_count(); ++n) {
      access[n] = static_cast<double>(cost_rng.integer(0, 3));
    }
    tomo::CostModel costs(1.0, access);
    ExactEr engine(*w.system, *w.model);
    const double budget = 8.0;
    const Selection opt = exhaustive_optimum(*w.system, costs, budget, engine);
    const Selection got = rome(*w.system, costs, budget, engine);
    // Compare true ER of the two selections.
    const double er_opt = engine.evaluate(opt.paths);
    const double er_got = engine.evaluate(got.paths);
    EXPECT_GE(er_got + 1e-9, factor * er_opt) << "seed " << seed;
  }
}

TEST(Rome, LazyMatchesEagerObjective) {
  for (std::uint64_t seed = 30; seed < 35; ++seed) {
    SmallWorld w(seed, 12);
    tomo::CostModel costs(7.0, {});
    ProbBoundEr engine(*w.system, *w.model);
    RomeStats lazy_stats;
    RomeStats eager_stats;
    const Selection lazy =
        rome(*w.system, costs, 50.0, engine, &lazy_stats);
    const Selection eager =
        rome_eager(*w.system, costs, 50.0, engine, &eager_stats);
    EXPECT_NEAR(lazy.objective, eager.objective, 1e-9) << "seed " << seed;
    EXPECT_EQ(lazy.paths.size(), eager.paths.size());
    // The lazy variant must not do more work than the eager one.
    EXPECT_LE(lazy_stats.gain_evaluations, eager_stats.gain_evaluations);
  }
}

TEST(Rome, KnapsackShapePicksBestRatio) {
  // Disjoint unit-link paths, modular objective: greedy by EA/cost with a
  // best-singleton fallback solves these small instances optimally.
  tomo::PathSystem sys = disjoint_paths(4);
  // Availabilities 0.9, 0.8, 0.5, 0.3; costs 2, 1, 1, 1; budget 2.
  failures::FailureModel model({0.1, 0.2, 0.5, 0.7});
  std::unordered_map<graph::NodeId, double> access;
  access[0] = 1.0;  // Path 0 endpoints: nodes 0,1 -> cost 1+1+0 hops*0.
  ExactEr engine(sys, model);
  // Build explicit costs: hop weight 1 => every path costs 1 + access.
  tomo::CostModel costs(1.0, access);
  // Path 0 costs 2 (1 hop + access 1), paths 1-3 cost 1.
  const Selection s = rome(sys, costs, 2.0, engine);
  // Optimal: paths {1, 2} with ER 0.8 + 0.5 = 1.3 beats {0} (0.9, cost 2).
  const double er = engine.evaluate(s.paths);
  EXPECT_NEAR(er, 1.3, 1e-9);
}

TEST(Rome, BestSingletonFallbackWins) {
  // One expensive path dominating many cheap ones.
  tomo::PathSystem sys = disjoint_paths(3);
  failures::FailureModel model({0.0, 0.95, 0.95});  // path 0 is perfect
  // Path 0 costs 5; paths 1, 2 cost 1 each.  Budget 5.
  std::unordered_map<graph::NodeId, double> access;
  access[0] = 4.0;  // path 0's source
  tomo::CostModel costs(1.0, access);
  ExactEr engine(sys, model);
  const Selection s = rome(sys, costs, 5.0, engine);
  // Greedy by ratio grabs the cheap low-value paths first (0.05/1 each vs
  // 1.0/5 = 0.2 ... ratio favors path 0 here actually; make the check
  // semantic instead: the result must be at least as good as both options.
  const double er = engine.evaluate(s.paths);
  EXPECT_GE(er + 1e-9, 1.0);  // At least the singleton {path 0} value.
}

TEST(Rome, StatsArePopulated) {
  SmallWorld w(40);
  tomo::CostModel costs = tomo::CostModel::unit();
  ProbBoundEr engine(*w.system, *w.model);
  RomeStats stats;
  const Selection s = rome(*w.system, costs, 5.0, engine, &stats);
  EXPECT_EQ(s.paths.size(), 5u);
  EXPECT_EQ(stats.iterations, 5u);
  EXPECT_GE(stats.gain_evaluations, w.system->path_count());
}

TEST(Rome, MonotoneInBudget) {
  SmallWorld w(41, 12);
  tomo::CostModel costs(5.0, {});
  ProbBoundEr engine(*w.system, *w.model);
  double prev = -1.0;
  for (double budget : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    const Selection s = rome(*w.system, costs, budget, engine);
    EXPECT_GE(s.objective + 1e-9, prev);
    prev = s.objective;
  }
}

// --------------------------------------------------------------------------
// MatRoMe
// --------------------------------------------------------------------------

TEST(MatRoMe, SelectionIsIndependentBasis) {
  SmallWorld w(50, 14);
  const Selection s = matrome(*w.system, *w.model);
  EXPECT_EQ(s.paths.size(), w.system->full_rank());
  EXPECT_EQ(w.system->rank_of(s.paths), s.paths.size());
}

TEST(MatRoMe, OptimalAmongIndependentSets) {
  // Matroid greedy with modular weights is optimal (Theorem 9): verify by
  // brute force over all independent subsets of bounded size.
  for (std::uint64_t seed = 60; seed < 64; ++seed) {
    SmallWorld w(seed, 10);
    const std::size_t budget = 4;
    const Selection greedy = matrome(*w.system, *w.model, budget);
    // Brute force.
    double best = 0.0;
    const std::size_t n = w.system->path_count();
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<std::size_t> subset;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) subset.push_back(i);
      }
      if (subset.size() > budget) continue;
      if (w.system->rank_of(subset) != subset.size()) continue;  // dependent
      double ea = 0.0;
      for (std::size_t q : subset) {
        ea += w.system->expected_availability(q, *w.model);
      }
      best = std::max(best, ea);
    }
    EXPECT_NEAR(greedy.objective, best, 1e-9) << "seed " << seed;
  }
}

TEST(MatRoMe, RespectsPathCountBudget) {
  SmallWorld w(65, 14);
  for (std::size_t budget : {0u, 1u, 3u, 100u}) {
    const Selection s = matrome(*w.system, *w.model, budget);
    EXPECT_LE(s.paths.size(), budget);
    EXPECT_EQ(w.system->rank_of(s.paths), s.paths.size());
  }
}

TEST(MaxWeightIndependentSet, PrefersHighWeights) {
  tomo::PathSystem sys = disjoint_paths(5);
  const std::vector<double> weights = {0.1, 0.9, 0.5, 0.7, 0.3};
  const Selection s = max_weight_independent_set(sys, weights, 2);
  ASSERT_EQ(s.paths.size(), 2u);
  EXPECT_EQ(s.paths[0], 1u);
  EXPECT_EQ(s.paths[1], 3u);
  EXPECT_NEAR(s.objective, 1.6, 1e-12);
}

// --------------------------------------------------------------------------
// SelectPath baseline
// --------------------------------------------------------------------------

TEST(SelectPath, BasisHasFullRank) {
  SmallWorld w(70, 14);
  Rng rng(70);
  const Selection s = select_path_basis(*w.system, rng);
  EXPECT_EQ(s.paths.size(), w.system->full_rank());
  EXPECT_EQ(w.system->rank_of(s.paths), s.paths.size());
}

TEST(SelectPath, OrderedVariantDeterministic) {
  SmallWorld w(71, 14);
  const Selection a = select_path_basis_ordered(*w.system);
  const Selection b = select_path_basis_ordered(*w.system);
  EXPECT_EQ(a.paths, b.paths);
}

TEST(SelectPath, BudgetedUnderBudgetAddsCheapest) {
  SmallWorld w(72, 14);
  tomo::CostModel costs(1.0, {});
  Rng rng(72);
  // Huge budget: everything fits.
  const Selection s = select_path_budgeted(*w.system, costs, 1e9, rng);
  EXPECT_EQ(s.paths.size(), w.system->path_count());
}

TEST(SelectPath, BudgetedOverBudgetTrims) {
  SmallWorld w(73, 14);
  tomo::CostModel costs(100.0, {});
  Rng rng(73);
  const double budget = 350.0;  // Fits only a few paths.
  const Selection s = select_path_budgeted(*w.system, costs, budget, rng);
  EXPECT_LE(s.cost, budget + 1e-9);
  EXPECT_FALSE(s.paths.empty());
  // Must have dropped expensive paths first: every kept path is at most as
  // expensive as any dropped basis path... weaker invariant: cost <= budget
  // and at least one path kept (asserted above).
}

TEST(SelectPath, BudgetedZeroBudget) {
  SmallWorld w(74, 10);
  tomo::CostModel costs(100.0, {});
  Rng rng(74);
  const Selection s = select_path_budgeted(*w.system, costs, 0.0, rng);
  EXPECT_TRUE(s.paths.empty());
}

// --------------------------------------------------------------------------
// Exhaustive oracle
// --------------------------------------------------------------------------

TEST(Exhaustive, FindsKnownOptimum) {
  tomo::PathSystem sys = disjoint_paths(3);
  failures::FailureModel model({0.1, 0.2, 0.3});
  tomo::CostModel costs = tomo::CostModel::unit();
  ExactEr engine(sys, model);
  const Selection s = exhaustive_optimum(sys, costs, 2.0, engine);
  // Best two: paths 0 (0.9) and 1 (0.8).
  ASSERT_EQ(s.paths.size(), 2u);
  EXPECT_NEAR(s.objective, 1.7, 1e-9);
}

TEST(Exhaustive, GuardsLargeInstances) {
  SmallWorld w(80, 14);
  tomo::CostModel costs = tomo::CostModel::unit();
  ProbBoundEr engine(*w.system, *w.model);
  EXPECT_THROW(exhaustive_optimum(*w.system, costs, 5.0, engine, 10),
               std::invalid_argument);
}

TEST(Exhaustive, EmptyWhenNothingAffordable) {
  tomo::PathSystem sys = disjoint_paths(3);
  failures::FailureModel model({0.1, 0.2, 0.3});
  tomo::CostModel costs(100.0, {});
  ExactEr engine(sys, model);
  const Selection s = exhaustive_optimum(sys, costs, 50.0, engine);
  EXPECT_TRUE(s.paths.empty());
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

}  // namespace
}  // namespace rnt::core
