// Tests for link-coverage statistics.
#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "exp/workload.h"
#include "tomo/coverage.h"
#include "tomo/identifiability.h"

namespace rnt::tomo {
namespace {

PathSystem line_system() {
  std::vector<ProbePath> paths(3);
  paths[0].links = {0};
  paths[0].hops = 1;
  paths[1].links = {0, 1};
  paths[1].hops = 2;
  paths[2].links = {0, 1, 2};
  paths[2].hops = 3;
  return PathSystem(3, paths);
}

TEST(Coverage, CountsMultiplicities) {
  const PathSystem sys = line_system();
  const CoverageStats stats = coverage(sys, {0, 1, 2});
  EXPECT_EQ(stats.covered_links, 3u);
  EXPECT_EQ(stats.singly_covered, 1u);  // l2 only on path 2.
  EXPECT_EQ(stats.max_multiplicity, 3u);  // l0 on all three paths.
  EXPECT_EQ(stats.multiplicity, (std::vector<std::size_t>{3, 2, 1}));
  EXPECT_NEAR(stats.mean_multiplicity, 2.0, 1e-12);
  EXPECT_NEAR(stats.coverage_fraction(3), 1.0, 1e-12);
}

TEST(Coverage, PartialSelection) {
  const PathSystem sys = line_system();
  const CoverageStats stats = coverage(sys, {0});
  EXPECT_EQ(stats.covered_links, 1u);
  EXPECT_EQ(stats.singly_covered, 1u);
  EXPECT_NEAR(stats.coverage_fraction(3), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(uncovered_links(sys, {0}), (std::vector<graph::EdgeId>{1, 2}));
}

TEST(Coverage, EmptySelection) {
  const PathSystem sys = line_system();
  const CoverageStats stats = coverage(sys, {});
  EXPECT_EQ(stats.covered_links, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_multiplicity, 0.0);
  EXPECT_EQ(uncovered_links(sys, {}).size(), 3u);
  EXPECT_DOUBLE_EQ(stats.coverage_fraction(0), 0.0);
}

TEST(Coverage, IdentifiabilityRequiresCoverage) {
  // Property: every identifiable link is covered.
  const exp::Workload w = exp::make_custom_workload(40, 80, 60, 3, 5.0);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto sel = core::rome(
      *w.system, w.costs,
      0.2 * w.costs.subset_cost(*w.system, all), engine);
  const auto stats = coverage(*w.system, sel.paths);
  for (std::size_t l : identifiable_links(*w.system, sel.paths)) {
    EXPECT_GT(stats.multiplicity[l], 0u);
  }
}

TEST(Coverage, RankNeverExceedsCoveredLinks) {
  // Invariant: the rank of a selection is at most the number of covered
  // links (nonzero columns) and at most the number of selected paths.
  for (std::uint64_t seed = 4; seed < 8; ++seed) {
    const exp::Workload w = exp::make_custom_workload(40, 80, 60, seed, 5.0);
    std::vector<std::size_t> all(w.system->path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const double budget = 0.1 * w.costs.subset_cost(*w.system, all);
    core::ProbBoundEr engine(*w.system, *w.failures);
    const auto sel = core::rome(*w.system, w.costs, budget, engine);
    const auto stats = coverage(*w.system, sel.paths);
    const std::size_t rank = w.system->rank_of(sel.paths);
    EXPECT_LE(rank, stats.covered_links);
    EXPECT_LE(rank, sel.paths.size());
    // Redundancy accounting is self-consistent.
    EXPECT_LE(stats.singly_covered, stats.covered_links);
    EXPECT_GE(stats.mean_multiplicity, 1.0);
  }
}

}  // namespace
}  // namespace rnt::tomo
