// The end-to-end inference layer (src/infer): seeded measurement
// synthesis, per-scenario restricted least-squares solves, error scoring,
// and the determinism contract — reports are bitwise identical across
// solver thread counts, and the service verb reproduces the library
// numbers from the same workload seed.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "exp/workload.h"
#include "infer/inference.h"
#include "service/protocol.h"
#include "service/service.h"

namespace rnt::infer {
namespace {

std::vector<std::size_t> all_paths(const tomo::PathSystem& system) {
  std::vector<std::size_t> all(system.path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return all;
}

TEST(Measurement, GroundTruthDeterministicAndBounded) {
  const TruthOptions options;
  const GroundTruth a = campaign_truth(MeasurementModel::kDelay, 50, 7);
  const GroundTruth b = campaign_truth(MeasurementModel::kDelay, 50, 7);
  ASSERT_EQ(a.natural.size(), 50u);
  EXPECT_EQ(a.natural, b.natural);  // Same seed, same truth — bitwise.
  EXPECT_EQ(a.additive, b.additive);
  for (std::size_t l = 0; l < a.link_count(); ++l) {
    EXPECT_GE(a.natural[l], options.delay_lo_ms);
    EXPECT_LT(a.natural[l], options.delay_hi_ms);
    EXPECT_EQ(a.additive[l], a.natural[l]);  // Delay is its own domain.
  }
  const GroundTruth c = campaign_truth(MeasurementModel::kDelay, 50, 8);
  EXPECT_NE(a.natural, c.natural);

  const GroundTruth loss = campaign_truth(MeasurementModel::kLoss, 50, 7);
  for (std::size_t l = 0; l < loss.link_count(); ++l) {
    EXPECT_GE(loss.natural[l], options.delivery_lo);
    EXPECT_LT(loss.natural[l], options.delivery_hi);
    EXPECT_NEAR(loss.additive[l], -std::log(loss.natural[l]), 1e-15);
    EXPECT_NEAR(to_natural(MeasurementModel::kLoss, loss.additive[l]),
                loss.natural[l], 1e-12);
  }
}

TEST(Measurement, SynthesizerIsSeedDeterministic) {
  const exp::Workload w = exp::make_custom_workload(30, 60, 50, 3);
  const GroundTruth truth =
      campaign_truth(MeasurementModel::kDelay, w.system->link_count(), 3);
  Rng scenario_rng(derive_seed(3, kScenarioSalt));
  const failures::FailureVector v = w.failures->sample(scenario_rng);
  const std::vector<std::size_t> subset = all_paths(*w.system);

  Rng noise_a(derive_seed(3, kNoiseSalt));
  Rng noise_b(derive_seed(3, kNoiseSalt));
  const Observations a =
      synthesize_observations(*w.system, subset, truth, v, 0.1, noise_a);
  const Observations b =
      synthesize_observations(*w.system, subset, truth, v, 0.1, noise_b);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.values, b.values);  // Identical stream, identical bytes.

  Rng noise_c(derive_seed(4, kNoiseSalt));
  const Observations c =
      synthesize_observations(*w.system, subset, truth, v, 0.1, noise_c);
  EXPECT_EQ(a.rows, c.rows);  // Survival is noise-independent.
  EXPECT_NE(a.values, c.values);
}

TEST(Inference, ZeroNoiseRoundtripBothModels) {
  const exp::Workload w = exp::make_custom_workload(30, 60, 80, 5);
  const std::vector<std::size_t> subset = all_paths(*w.system);
  Rng scenario_rng(derive_seed(5, kScenarioSalt));
  const failures::FailureVector v = w.failures->sample(scenario_rng);
  for (const MeasurementModel model :
       {MeasurementModel::kDelay, MeasurementModel::kLoss}) {
    const GroundTruth truth =
        campaign_truth(model, w.system->link_count(), 5);
    Rng noise_rng(derive_seed(5, kNoiseSalt));
    const Observations obs = synthesize_observations(
        *w.system, subset, truth, v, /*noise_std=*/0.0, noise_rng);
    SolveOptions options;
    options.cgls.tolerance = 1e-13;
    const ScenarioSolution solution =
        solve_scenario(*w.system, obs, model, options);
    EXPECT_TRUE(solution.converged);
    EXPECT_FALSE(solution.identifiable.empty());
    for (const std::size_t link : solution.identifiable) {
      EXPECT_NEAR(solution.natural[link], truth.natural[link], 1e-9)
          << to_string(model) << " link " << link;
    }
  }
}

TEST(Inference, NoSurvivorsIsTrivialScenario) {
  const exp::Workload w = exp::make_custom_workload(20, 40, 20, 9);
  const GroundTruth truth =
      campaign_truth(MeasurementModel::kDelay, w.system->link_count(), 9);
  const failures::FailureVector all_down(w.system->link_count(), true);
  Rng rng(1);
  const Observations obs = synthesize_observations(
      *w.system, all_paths(*w.system), truth, all_down, 0.0, rng);
  EXPECT_TRUE(obs.rows.empty());
  const ScenarioSolution solution =
      solve_scenario(*w.system, obs, MeasurementModel::kDelay);
  EXPECT_TRUE(solution.converged);
  EXPECT_TRUE(solution.identifiable.empty());
  EXPECT_EQ(solution.surviving_rows, 0u);
  const ScenarioScore score = score_scenario(solution, truth);
  EXPECT_EQ(score.identifiable, 0u);
  EXPECT_EQ(score.coverage, 0.0);
  // With nothing identifiable, every link is charged at the prior-mean
  // fallback — the network MSE is exactly the prior's error on the truth.
  const double prior = prior_estimate(MeasurementModel::kDelay);
  double expected = 0.0;
  for (const double t : truth.natural) {
    expected += (prior - t) * (prior - t);
  }
  expected /= static_cast<double>(truth.link_count());
  EXPECT_EQ(score.network_mse, expected);
}

TEST(Inference, NetworkMseBeatsPriorWhenLinksAreIdentifiable) {
  const exp::Workload w = exp::make_custom_workload(30, 60, 80, 5);
  const GroundTruth truth =
      campaign_truth(MeasurementModel::kDelay, w.system->link_count(), 5);
  InferenceConfig config;
  config.scenarios = 30;
  config.noise_std = 0.0;
  const InferenceReport report = run_inference(
      *w.system, all_paths(*w.system), *w.failures, truth, config, 5);
  ASSERT_GT(report.coverage.mean(), 0.0);
  const double prior = prior_estimate(MeasurementModel::kDelay);
  double prior_mse = 0.0;
  for (const double t : truth.natural) {
    prior_mse += (prior - t) * (prior - t);
  }
  prior_mse /= static_cast<double>(truth.link_count());
  // Identified links are estimated near-exactly at zero noise, so the
  // all-links score must improve on reporting the prior everywhere.
  EXPECT_LT(report.network_mse.mean(), prior_mse);
  EXPECT_GT(report.network_mse.mean(), 0.0);
}

TEST(Inference, ReportBitwiseIdenticalAcrossThreadCounts) {
  const exp::Workload w = exp::make_custom_workload(40, 80, 100, 13);
  const std::vector<std::size_t> subset = all_paths(*w.system);
  const GroundTruth truth =
      campaign_truth(MeasurementModel::kDelay, w.system->link_count(), 13);
  InferenceConfig config;
  config.scenarios = 40;
  config.noise_std = 0.05;

  config.threads = 1;
  const InferenceReport serial =
      run_inference(*w.system, subset, *w.failures, truth, config, 13);
  config.threads = 4;
  const InferenceReport threaded =
      run_inference(*w.system, subset, *w.failures, truth, config, 13);

  EXPECT_EQ(serial.scenarios, threaded.scenarios);
  EXPECT_EQ(serial.solved, threaded.solved);
  EXPECT_EQ(serial.converged, threaded.converged);
  // Bitwise equality of every aggregate — the fixed-order reduction
  // makes the accumulation tree independent of the worker schedule.
  EXPECT_EQ(serial.mse.mean(), threaded.mse.mean());
  EXPECT_EQ(serial.mse.count(), threaded.mse.count());
  EXPECT_EQ(serial.mean_abs_error.mean(), threaded.mean_abs_error.mean());
  EXPECT_EQ(serial.max_abs_error.max(), threaded.max_abs_error.max());
  EXPECT_EQ(serial.coverage.mean(), threaded.coverage.mean());
  EXPECT_EQ(serial.network_mse.mean(), threaded.network_mse.mean());
  EXPECT_EQ(serial.identifiable.mean(), threaded.identifiable.mean());
  EXPECT_EQ(serial.residual.mean(), threaded.residual.mean());
  EXPECT_EQ(serial.iterations.mean(), threaded.iterations.mean());
  EXPECT_GT(serial.scenarios, 0u);
  EXPECT_GT(serial.coverage.mean(), 0.0);
}

TEST(Inference, NoiseDegradesAccuracy) {
  const exp::Workload w = exp::make_custom_workload(30, 60, 80, 17);
  const std::vector<std::size_t> subset = all_paths(*w.system);
  const GroundTruth truth =
      campaign_truth(MeasurementModel::kDelay, w.system->link_count(), 17);
  InferenceConfig config;
  config.scenarios = 30;
  config.noise_std = 0.0;
  const InferenceReport clean =
      run_inference(*w.system, subset, *w.failures, truth, config, 17);
  config.noise_std = 0.5;
  const InferenceReport noisy =
      run_inference(*w.system, subset, *w.failures, truth, config, 17);
  EXPECT_NEAR(clean.mse.mean(), 0.0, 1e-14);
  EXPECT_GT(noisy.mse.mean(), clean.mse.mean());
}

// --------------------------------------------------------------------------
// The service verb reproduces the library numbers and feeds the metrics.
// --------------------------------------------------------------------------

TEST(ServiceInfer, StatsAreZeroBeforeAnyInfer) {
  service::Service service({.threads = 1, .cache_capacity = 2});
  const service::Response stats =
      service.handle(service::parse_request("stats"));
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.at("infer-requests"), "0");
  EXPECT_EQ(stats.number("infer-solve-p50-ms"), 0.0);
  EXPECT_EQ(stats.number("infer-solve-p95-ms"), 0.0);
}

TEST(ServiceInfer, VerbMatchesLibraryAndRecordsMetrics) {
  service::Service service({.threads = 2, .cache_capacity = 2});
  // Explicit subset so the differential below needs no selection re-run.
  const service::Response reply = service.handle(service::parse_request(
      "infer nodes=30 links=60 paths=80 seed=1 subset=0,1,2,3,4,5,6,7,8,9 "
      "scenarios=25 noise=0.05 model=loss"));
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.at("model"), "loss");
  EXPECT_EQ(reply.at("paths"), "10");
  EXPECT_EQ(reply.at("scenarios"), "25");

  // The same numbers straight from the library, with the service's
  // workload construction and seeding.
  const exp::Workload w = exp::make_custom_workload(30, 60, 80, 1, 5.0);
  InferenceConfig config;
  config.model = MeasurementModel::kLoss;
  config.noise_std = 0.05;
  config.scenarios = 25;
  const GroundTruth truth =
      campaign_truth(config.model, w.system->link_count(), w.seed);
  std::vector<std::size_t> subset(10);
  std::iota(subset.begin(), subset.end(), std::size_t{0});
  const InferenceReport report =
      run_inference(*w.system, subset, *w.failures, truth, config, w.seed);
  EXPECT_EQ(reply.number("coverage-mean"), report.coverage.mean());
  EXPECT_EQ(reply.number("network-mse-mean"), report.network_mse.mean());
  EXPECT_EQ(reply.number("mse-mean"), report.mse.mean());
  EXPECT_EQ(reply.number("residual-mean"), report.residual.mean());
  EXPECT_EQ(static_cast<std::size_t>(reply.number("solved")), report.solved);

  const service::Response stats =
      service.handle(service::parse_request("stats"));
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.at("infer-requests"), "1");
  EXPECT_EQ(stats.at("count-infer"), "1");
  EXPECT_GT(stats.number("infer-solve-p50-ms"), 0.0);
  EXPECT_GE(stats.number("infer-solve-p95-ms"),
            stats.number("infer-solve-p50-ms"));
}

TEST(ServiceInfer, RejectsBadParameters) {
  service::Service service({.threads = 1, .cache_capacity = 2});
  const service::Response bad_model = service.handle(
      service::parse_request("infer nodes=20 links=40 paths=30 model=ping"));
  EXPECT_FALSE(bad_model.ok);
  const service::Response bad_noise = service.handle(
      service::parse_request("infer nodes=20 links=40 paths=30 noise=-1"));
  EXPECT_FALSE(bad_noise.ok);
  const service::Response typo = service.handle(service::parse_request(
      "infer nodes=20 links=40 paths=30 scenaros=10"));
  EXPECT_FALSE(typo.ok);
}

}  // namespace
}  // namespace rnt::infer
