// Tests for the CSR sparse matrix: conversions, accessors, products,
// transpose, row selection, and rank agreement with the dense substrate.
#include <gtest/gtest.h>

#include "linalg/elimination.h"
#include "linalg/sparse.h"
#include "tomo/monitors.h"
#include "graph/isp_topology.h"
#include "util/rng.h"

namespace rnt::linalg {
namespace {

Matrix random_binary_matrix(std::size_t rows, std::size_t cols, double density,
                            Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) m(r, c) = 1.0;
    }
  }
  return m;
}

TEST(Sparse, DenseRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix dense = random_binary_matrix(8, 12, 0.2, rng);
    const SparseMatrix sparse = SparseMatrix::from_dense(dense);
    EXPECT_EQ(sparse.to_dense(), dense);
    EXPECT_EQ(sparse.rows(), 8u);
    EXPECT_EQ(sparse.cols(), 12u);
  }
}

TEST(Sparse, FromRowsAndAccess) {
  const SparseMatrix m = SparseMatrix::from_rows(
      4, {{{2, 1.0}, {0, 3.0}}, {}, {{3, -2.0}}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);  // Sorted within the row.
  EXPECT_DOUBLE_EQ(m.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 3), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 3), -2.0);
  EXPECT_THROW(m.at(3, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 4), std::out_of_range);
}

TEST(Sparse, FromRowsValidates) {
  EXPECT_THROW(SparseMatrix::from_rows(2, {{{5, 1.0}}}), std::out_of_range);
  EXPECT_THROW(SparseMatrix::from_rows(3, {{{1, 1.0}, {1, 2.0}}}),
               std::invalid_argument);
}

TEST(Sparse, ZeroValuesDropped) {
  const SparseMatrix m =
      SparseMatrix::from_rows(3, {{{0, 0.0}, {1, 1.0}}});
  EXPECT_EQ(m.nonzeros(), 1u);
}

TEST(Sparse, MultiplyMatchesDense) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix dense = random_binary_matrix(7, 9, 0.3, rng);
    const SparseMatrix sparse = SparseMatrix::from_dense(dense);
    std::vector<double> x(9);
    for (double& v : x) v = rng.uniform(-2, 2);
    const auto ys = sparse.multiply(x);
    const auto yd = dense.multiply(std::span<const double>(x));
    ASSERT_EQ(ys.size(), yd.size());
    for (std::size_t i = 0; i < ys.size(); ++i) {
      EXPECT_NEAR(ys[i], yd[i], 1e-12);
    }
  }
}

TEST(Sparse, TransposedMultiplyMatchesDense) {
  Rng rng(3);
  const Matrix dense = random_binary_matrix(6, 10, 0.3, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  std::vector<double> x(6);
  for (double& v : x) v = rng.uniform(-1, 1);
  const auto ys = sparse.multiply_transposed(x);
  const auto yd = dense.transposed().multiply(std::span<const double>(x));
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_NEAR(ys[i], yd[i], 1e-12);
  }
}

TEST(Sparse, TransposeRoundTrip) {
  Rng rng(4);
  const Matrix dense = random_binary_matrix(9, 5, 0.35, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  EXPECT_EQ(sparse.transposed().to_dense(), dense.transposed());
  EXPECT_EQ(sparse.transposed().transposed().to_dense(), dense);
}

TEST(Sparse, SelectRows) {
  const SparseMatrix m = SparseMatrix::from_rows(
      3, {{{0, 1.0}}, {{1, 2.0}}, {{2, 3.0}}});
  const SparseMatrix sub = m.select_rows({2, 0});
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 1.0);
  EXPECT_THROW(m.select_rows({9}), std::out_of_range);
}

TEST(Sparse, DensityAndSizeMismatch) {
  const SparseMatrix m = SparseMatrix::from_rows(4, {{{0, 1.0}}, {}});
  EXPECT_DOUBLE_EQ(m.density(), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(SparseMatrix().density(), 0.0);
  std::vector<double> bad(3, 0.0);
  EXPECT_THROW(m.multiply(bad), std::invalid_argument);
  EXPECT_THROW(m.multiply_transposed(bad), std::invalid_argument);
}

TEST(Sparse, RankMatchesDenseOnPathMatrices) {
  Rng rng(5);
  graph::Graph g = graph::build_isp_like(60, 120, rng);
  const tomo::PathSystem sys = tomo::build_path_system(g, 80, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(sys.matrix());
  EXPECT_EQ(sparse.rank_via_dense(), rank(sys.matrix()));
  // Path matrices really are sparse — the representation pays off.
  EXPECT_LT(sparse.density(), 0.1);
}

TEST(Sparse, RowSpansExposePattern) {
  const SparseMatrix m =
      SparseMatrix::from_rows(5, {{{1, 1.0}, {3, 1.0}}, {{0, 2.0}}});
  const auto cols0 = m.row_columns(0);
  ASSERT_EQ(cols0.size(), 2u);
  EXPECT_EQ(cols0[0], 1u);
  EXPECT_EQ(cols0[1], 3u);
  const auto vals1 = m.row_values(1);
  ASSERT_EQ(vals1.size(), 1u);
  EXPECT_DOUBLE_EQ(vals1[0], 2.0);
}

TEST(Sparse, ZeroRowsSurviveEveryOperation) {
  // Rows 1 and 3 are all-zero — the shape a failure scenario leaves after
  // knocking out every link of a path.
  const SparseMatrix m = SparseMatrix::from_rows(
      3, {{{0, 1.0}, {2, 2.0}}, {}, {{2, 1.0}}, {}});
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_TRUE(m.row_columns(1).empty());
  EXPECT_TRUE(m.row_values(3).empty());

  const std::vector<double> x = {1.0, 5.0, 2.0};
  const auto y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
  EXPECT_DOUBLE_EQ(y[3], 0.0);

  // Transpose, selection and rank stay consistent through the empty rows.
  EXPECT_EQ(m.transposed().cols(), 4u);
  EXPECT_EQ(m.transposed().to_dense(), m.to_dense().transposed());
  const SparseMatrix only_zero = m.select_rows({1, 3});
  EXPECT_EQ(only_zero.rows(), 2u);
  EXPECT_EQ(only_zero.nonzeros(), 0u);
  EXPECT_EQ(only_zero.rank_via_dense(), 0u);
  EXPECT_EQ(m.rank_via_dense(), 2u);
}

TEST(Sparse, RankDeficientRowsMatchDenseOracle) {
  // r2 = r0 and r3 = r0 + r1: rank stays 2, agreeing with the dense rank.
  const SparseMatrix m = SparseMatrix::from_rows(
      4, {{{0, 1.0}, {1, 1.0}},
          {{1, 1.0}, {3, 1.0}},
          {{0, 1.0}, {1, 1.0}},
          {{0, 1.0}, {1, 2.0}, {3, 1.0}}});
  EXPECT_EQ(m.rank_via_dense(), 2u);
  EXPECT_EQ(m.rank_via_dense(), rank(m.to_dense()));
}

TEST(Sparse, AllZeroMatrixHasRankZero) {
  const SparseMatrix m = SparseMatrix::from_rows(6, {{}, {}, {}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 6u);
  EXPECT_EQ(m.rank_via_dense(), 0u);
  EXPECT_DOUBLE_EQ(m.density(), 0.0);
  for (double v : m.multiply(std::vector<double>(6, 1.0))) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  for (double v : m.multiply_transposed(std::vector<double>(3, 1.0))) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

}  // namespace
}  // namespace rnt::linalg
