// The correctness harness itself: instance generation, brute-force
// oracles, repro serialization, the shrinker, and the fuzz loop — plus the
// harness's acceptance gate: a deliberately injected ProbBound defect must
// be caught and shrunk to a tiny replayable repro.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/expected_rank.h"
#include "testkit/checks.h"
#include "testkit/fuzzer.h"
#include "testkit/instance.h"
#include "testkit/oracles.h"
#include "testkit/shrink.h"

namespace rnt::testkit {
namespace {

TestInstance tiny_instance() {
  // Three links; paths {0}, {1}, {0,1} — the dependent-triple gadget.
  return make_instance({{0}, {1}, {0, 1}}, {0.1, 0.2, 0.3},
                       {1.0, 2.0, 3.0}, 42);
}

// --------------------------------------------------------------------------
// Instances
// --------------------------------------------------------------------------

TEST(Instance, GenerationIsDeterministic) {
  const TestInstance a = generate_instance(123);
  const TestInstance b = generate_instance(123);
  EXPECT_EQ(a.path_links, b.path_links);
  EXPECT_EQ(a.link_probs, b.link_probs);
  EXPECT_EQ(a.path_costs, b.path_costs);
  EXPECT_EQ(a.check_seed, b.check_seed);
  const TestInstance c = generate_instance(124);
  EXPECT_NE(a.path_links, c.path_links);
}

TEST(Instance, GenerationRespectsBounds) {
  const SpecBounds bounds;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TestInstance inst = generate_instance(seed, bounds);
    EXPECT_GE(inst.path_count(), 2u) << "seed " << seed;
    EXPECT_LE(inst.path_count(), bounds.max_paths) << "seed " << seed;
    EXPECT_GE(inst.link_count(), 2u) << "seed " << seed;
    EXPECT_LE(inst.link_count(), bounds.max_links) << "seed " << seed;
    for (const double p : inst.link_probs) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 0.95);
    }
  }
}

TEST(Instance, MakeInstanceEncodesPathCostsExactly) {
  const TestInstance inst = tiny_instance();
  for (std::size_t i = 0; i < inst.path_count(); ++i) {
    EXPECT_DOUBLE_EQ(inst.costs.path_cost(inst.system.path(i)),
                     inst.path_costs[i]);
  }
  EXPECT_EQ(inst.system.link_count(), 3u);
  EXPECT_EQ(inst.model.link_count(), 3u);
}

TEST(Instance, MakeInstanceValidates) {
  EXPECT_THROW(make_instance({{0}}, {0.1}, {1.0, 2.0}, 1),
               std::invalid_argument);  // paths/costs mismatch
  EXPECT_THROW(make_instance({{5}}, {0.1}, {1.0}, 1),
               std::invalid_argument);  // link id out of range
  EXPECT_THROW(make_instance({{}}, {0.1}, {1.0}, 1),
               std::invalid_argument);  // empty path
}

TEST(Instance, MixSeedSeparatesSalts) {
  EXPECT_EQ(mix_seed(1, 2), mix_seed(1, 2));
  EXPECT_NE(mix_seed(1, 2), mix_seed(1, 3));
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 2));
}

// --------------------------------------------------------------------------
// Oracles
// --------------------------------------------------------------------------

TEST(Oracles, NaiveRankOnKnownMatrices) {
  EXPECT_EQ(naive_rank({}), 0u);
  EXPECT_EQ(naive_rank({{1, 0}, {0, 1}}), 2u);
  EXPECT_EQ(naive_rank({{1, 0}, {2, 0}}), 1u);
  EXPECT_EQ(naive_rank({{1, 1}, {1, 0}, {0, 1}}), 2u);
  EXPECT_EQ(naive_rank({{0, 0, 0}}), 0u);
}

TEST(Oracles, ExhaustiveErOnSinglePath) {
  // One path over one link: ER = P(survive) * 1 = 1 - p.
  const TestInstance inst = make_instance({{0}}, {0.25}, {1.0}, 1);
  EXPECT_NEAR(exhaustive_er(inst, {0}), 0.75, 1e-12);
}

TEST(Oracles, ExhaustiveErMatchesExactEngine) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TestInstance inst = generate_instance(seed);
    const ExhaustiveErTable table(inst);
    const core::ExactEr exact(inst.system, inst.model);
    std::vector<std::size_t> all(inst.path_count());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    EXPECT_NEAR(table.er(all), exact.evaluate(all), 1e-9) << "seed " << seed;
  }
}

TEST(Oracles, ExhaustiveIndependentEaOnGadget) {
  // Paths {0}, {1}, {0,1}: any two are independent, all three are not.
  // EA: 0.9, 0.8, 0.72 — best pair is {0, 1} with 1.7.
  const TestInstance inst = tiny_instance();
  const OracleSelection best = exhaustive_best_independent_ea(inst, 2);
  EXPECT_EQ(best.paths, (std::vector<std::size_t>{0, 1}));
  EXPECT_NEAR(best.objective, 0.9 + 0.8, 1e-12);
  const OracleSelection single = exhaustive_best_independent_ea(inst, 1);
  EXPECT_EQ(single.paths, (std::vector<std::size_t>{0}));
}

TEST(Oracles, ExhaustiveBestSelectionRespectsBudget) {
  const TestInstance inst = tiny_instance();
  const OracleSelection best = exhaustive_best_selection(inst, 3.0);
  EXPECT_LE(best.cost, 3.0 + 1e-9);
  // Budget 3 affords {0,1} (ER 1.7) but not {0,1,2}; single path 2 has
  // lower ER than the pair.
  EXPECT_EQ(best.paths, (std::vector<std::size_t>{0, 1}));
}

// --------------------------------------------------------------------------
// Repro files
// --------------------------------------------------------------------------

TEST(Repro, RoundTripsNormalForm) {
  const TestInstance inst = generate_instance(77);
  std::stringstream stream;
  write_repro(stream, "rank-oracles-agree", inst, "two\nline note");
  const Repro repro = read_repro(stream);
  EXPECT_EQ(repro.check, "rank-oracles-agree");
  EXPECT_EQ(repro.instance.path_links, inst.path_links);
  EXPECT_EQ(repro.instance.link_probs, inst.link_probs);
  EXPECT_EQ(repro.instance.path_costs, inst.path_costs);
  EXPECT_EQ(repro.instance.check_seed, inst.check_seed);
}

TEST(Repro, ReadRejectsMalformedInput) {
  const auto read = [](const std::string& text) {
    std::istringstream in(text);
    return read_repro(in);
  };
  EXPECT_THROW(read("bogus-key 1\n"), std::runtime_error);
  EXPECT_THROW(read("check c\nseed 1\nlinks 2\nprobs 0.1\npath 1 0\n"),
               std::runtime_error);  // probs/links mismatch
  EXPECT_THROW(read("check c\nseed 1\nlinks 1\nprobs 0.1\n"),
               std::runtime_error);  // no paths
  EXPECT_THROW(read("seed 1\nlinks 1\nprobs 0.1\npath 1 0\n"),
               std::runtime_error);  // missing check name
  EXPECT_THROW(read("check c\nseed 1\nlinks 1\nprobs 0.1\npath 1\n"),
               std::runtime_error);  // path with no links
  EXPECT_THROW(load_repro("/nonexistent/repro.txt"), std::runtime_error);
}

// --------------------------------------------------------------------------
// Checks and the registry
// --------------------------------------------------------------------------

TEST(Checks, RegistryIsConsistent) {
  ASSERT_FALSE(all_checks().empty());
  for (const Check& c : all_checks()) {
    EXPECT_NE(c.fn, nullptr) << c.name;
    EXPECT_GE(c.stride, 1u) << c.name;
    EXPECT_EQ(find_check(c.name), &c);
  }
  EXPECT_EQ(find_check("no-such-check"), nullptr);
}

TEST(Checks, AllPassOnGeneratedInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TestInstance inst = generate_instance(seed);
    for (const Check& c : all_checks()) {
      if (!c.shrinkable) continue;  // Workload-cache check is slow.
      const CheckResult r = run_check(c, inst);
      EXPECT_TRUE(r.passed) << c.name << " on seed " << seed << ": "
                            << r.message;
    }
  }
}

TEST(Checks, RunCheckConvertsExceptionsToFailures) {
  // 21 links breaks the exhaustive oracle's guard; the harness must turn
  // the throw into a diagnosable failure rather than crash the fuzz loop.
  std::vector<std::vector<std::uint32_t>> paths = {{20}};
  const TestInstance big =
      make_instance(std::move(paths), std::vector<double>(21, 0.1), {1.0}, 1);
  const CheckResult r =
      run_check(*find_check("er-monotone-submodular"), big);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.message.find("exception"), std::string::npos);
}

// --------------------------------------------------------------------------
// Shrinker
// --------------------------------------------------------------------------

TEST(Shrink, DropLinkRemapsIdsAndDiscardsEmptyPaths) {
  const TestInstance inst = tiny_instance();
  const TestInstance reduced = drop_link(inst, 0);
  // Path {0} lost its only link and is gone; {1} and {0,1} lose link 0 and
  // remap link 1 -> 0.
  EXPECT_EQ(reduced.link_count(), 2u);
  EXPECT_EQ(reduced.path_links,
            (std::vector<std::vector<std::uint32_t>>{{0}, {0}}));
  EXPECT_EQ(reduced.path_costs, (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ(reduced.link_probs, (std::vector<double>{0.2, 0.3}));
}

TEST(Shrink, DropPathKeepsTheRest) {
  const TestInstance inst = tiny_instance();
  const TestInstance reduced = drop_path(inst, 1);
  EXPECT_EQ(reduced.path_links,
            (std::vector<std::vector<std::uint32_t>>{{0}, {0, 1}}));
  EXPECT_EQ(reduced.path_costs, (std::vector<double>{1.0, 3.0}));
}

TEST(Shrink, RejectsPassingInput) {
  const TestInstance inst = generate_instance(5);
  EXPECT_THROW(shrink(*find_check("rank-oracles-agree"), inst),
               std::invalid_argument);
}

TEST(Shrink, InjectedProbBoundFaultShrinksToTinyRepro) {
  // The acceptance gate: a ProbBound implementation that drops a term must
  // be caught and minimized to a repro of at most 6 links.
  const Check& check = *find_check("probbound-dominates-er");
  FaultPlan fault;
  fault.probbound_deflate = 1e-3;
  const TestInstance inst = generate_instance(1);
  ASSERT_FALSE(run_check(check, inst, fault).passed);

  const ShrinkResult result = shrink(check, inst, fault);
  EXPECT_FALSE(result.failure.passed);
  EXPECT_LE(result.instance.link_count(), 6u);
  EXPECT_LE(result.instance.path_count(), 3u);
  // The shrunk instance still fails with the fault and passes without.
  EXPECT_FALSE(run_check(check, result.instance, fault).passed);
  EXPECT_TRUE(run_check(check, result.instance).passed);
}

// --------------------------------------------------------------------------
// Fuzz loop
// --------------------------------------------------------------------------

TEST(Fuzz, MiniSweepPassesAndIsDeterministic) {
  FuzzConfig config;
  config.seed = 99;
  config.cases = 100;
  const FuzzReport first = run_fuzz(config, nullptr);
  EXPECT_TRUE(first.ok()) << (first.failures.empty()
                                  ? ""
                                  : first.failures.front().result.message);
  EXPECT_EQ(first.cases_run, 100u);
  const FuzzReport second = run_fuzz(config, nullptr);
  EXPECT_EQ(first.checks_run, second.checks_run);
  EXPECT_EQ(first.per_check, second.per_check);
}

TEST(Fuzz, HonorsCheckFilterAndRejectsUnknownNames) {
  FuzzConfig config;
  config.cases = 10;
  config.checks = {"rank-oracles-agree"};
  const FuzzReport report = run_fuzz(config, nullptr);
  EXPECT_EQ(report.per_check.size(), 1u);
  EXPECT_EQ(report.per_check.at("rank-oracles-agree"), 10u);

  config.checks = {"no-such-check"};
  EXPECT_THROW(run_fuzz(config, nullptr), std::invalid_argument);
}

TEST(Fuzz, InjectedFaultIsCaughtShrunkAndWritten) {
  FuzzConfig config;
  config.seed = 1;
  config.cases = 50;
  config.checks = {"probbound-dominates-er"};
  config.fault.probbound_deflate = 1e-3;
  config.out_dir = ::testing::TempDir();
  std::ostringstream progress;
  const FuzzReport report = run_fuzz(config, &progress);
  ASSERT_EQ(report.failures.size(), 1u);
  const FuzzFailure& failure = report.failures.front();
  EXPECT_EQ(failure.check, "probbound-dominates-er");
  EXPECT_LE(failure.instance.link_count(), 6u);
  ASSERT_FALSE(failure.repro_path.empty());

  // The written repro replays: fails with the fault, passes without.
  const Repro repro = load_repro(failure.repro_path);
  EXPECT_EQ(repro.check, "probbound-dominates-er");
  EXPECT_FALSE(replay_repro(repro, config.fault).passed);
  EXPECT_TRUE(replay_repro(repro).passed);
  std::remove(failure.repro_path.c_str());
}

TEST(Fuzz, ReplayRejectsUnknownCheck) {
  Repro repro;
  repro.check = "no-such-check";
  repro.instance = generate_instance(1);
  EXPECT_THROW(replay_repro(repro), std::runtime_error);
}

}  // namespace
}  // namespace rnt::testkit
