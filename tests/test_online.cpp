// Tests for the adaptive replanning pipeline: the link estimator's
// posterior mechanics, the drift detector's alarm gating, the warm-start
// replanner's equivalence with core::rome, and the end-to-end pipeline's
// determinism and policy behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "failures/trace.h"
#include "graph/generators.h"
#include "online/drift_detector.h"
#include "online/link_estimator.h"
#include "online/pipeline.h"
#include "online/replanner.h"
#include "tomo/estimation.h"
#include "tomo/monitors.h"
#include "util/rng.h"

namespace rnt::online {
namespace {

/// Hand-built three-link system: path 0 = {0}, path 1 = {1},
/// path 2 = {0, 1}, path 3 = {2}.
tomo::PathSystem tiny_system() {
  auto make = [](std::vector<graph::EdgeId> links) {
    tomo::ProbePath p;
    p.links = std::move(links);
    p.hops = p.links.size();
    return p;
  };
  return tomo::PathSystem(3, {make({0}), make({1}), make({0, 1}), make({2})});
}

/// Random ISP-like workload for the replanner / pipeline tests.
struct SmallWorld {
  graph::Graph graph{0};
  std::unique_ptr<tomo::PathSystem> system;
  tomo::CostModel costs = tomo::CostModel::unit();
  std::unique_ptr<failures::FailureModel> model;
  double budget = 0.0;

  explicit SmallWorld(std::uint64_t seed, double intensity = 3.0) {
    Rng rng(seed);
    graph = graph::connected_erdos_renyi(30, 60, rng);
    system = std::make_unique<tomo::PathSystem>(
        tomo::build_path_system(graph, 60, rng));
    model = std::make_unique<failures::FailureModel>(
        failures::markopoulou_model(graph.edge_count(), rng, intensity));
    budget = 0.4 * static_cast<double>(system->path_count());
  }
};

// --------------------------------------------------------------------------
// LinkEstimator
// --------------------------------------------------------------------------

TEST(LinkEstimator, StartsAtPriorMean) {
  LinkEstimator est(4);
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_DOUBLE_EQ(est.probability(l), 0.5 / (0.5 + 9.5));
  }
  EXPECT_EQ(est.epochs(), 0u);
}

TEST(LinkEstimator, DirectTelemetryMovesPosterior) {
  LinkEstimator est(2);
  const double prior = est.probability(0);
  est.observe_link(0, true, 10.0);
  est.observe_link(1, false, 10.0);
  EXPECT_GT(est.probability(0), prior);
  EXPECT_LT(est.probability(1), prior);
  EXPECT_THROW(est.observe_link(2, true), std::out_of_range);
  EXPECT_THROW(est.observe_link(0, true, -1.0), std::invalid_argument);
}

TEST(LinkEstimator, LossConcentratesOnFailingLink) {
  const tomo::PathSystem system = tiny_system();
  LinkEstimator est(system.link_count());
  // Link 0 is down: path {0} and path {0,1} lose, path {1} delivers.
  for (int i = 0; i < 40; ++i) {
    est.observe_epoch(system, {0, 1, 2}, {false, true, false});
  }
  EXPECT_GT(est.probability(0), 0.5);
  EXPECT_LT(est.probability(1), 0.1);
  // Link 2 never probed: still at the prior.
  EXPECT_DOUBLE_EQ(est.probability(2), 0.5 / (0.5 + 9.5));
  EXPECT_EQ(est.epochs(), 40u);
}

TEST(LinkEstimator, ForgettingDecaysTowardPrior) {
  const tomo::PathSystem system = tiny_system();
  LinkEstimatorConfig config;
  config.forgetting = 0.8;
  LinkEstimator est(system.link_count(), config);
  for (int i = 0; i < 30; ++i) {
    est.observe_epoch(system, {0}, {false});
  }
  const double peak = est.probability(0);
  ASSERT_GT(peak, 0.3);
  // Link 0 recovers: every probe now delivers.
  for (int i = 0; i < 30; ++i) {
    est.observe_epoch(system, {0}, {true});
  }
  EXPECT_LT(est.probability(0), 0.1);
}

TEST(LinkEstimator, ModelSnapshotMatchesProbabilities) {
  LinkEstimator est(3);
  est.observe_link(1, true, 5.0);
  const failures::FailureModel model = est.model();
  ASSERT_EQ(model.link_count(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_DOUBLE_EQ(model.probability(l), est.probability(l));
  }
}

TEST(LinkEstimator, RejectsMismatchedInput) {
  const tomo::PathSystem system = tiny_system();
  LinkEstimator est(system.link_count());
  EXPECT_THROW(est.observe_epoch(system, {0, 1}, {true}),
               std::invalid_argument);
  LinkEstimator wrong(system.link_count() + 1);
  EXPECT_THROW(wrong.observe_epoch(system, {0}, {true}),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// DriftDetector
// --------------------------------------------------------------------------

TEST(DriftDetector, StationaryStreamNeverTriggers) {
  DriftDetector drift(3);
  const std::vector<double> estimate{0.05, 0.1, 0.02};
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(drift.observe(estimate));
  }
  EXPECT_EQ(drift.triggers(), 0u);
  EXPECT_NEAR(drift.divergence(), 0.0, 1e-12);
}

TEST(DriftDetector, RegimeShiftTriggersOnce) {
  DriftDetector drift(3);
  const std::vector<double> before{0.05, 0.05, 0.05};
  const std::vector<double> after{0.4, 0.05, 0.05};
  for (int i = 0; i < 20; ++i) ASSERT_FALSE(drift.observe(before));
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) fired = drift.observe(after);
  EXPECT_TRUE(fired);
  EXPECT_EQ(drift.triggers(), 1u);
  // Cooldown: the very next epoch cannot re-trigger.
  EXPECT_FALSE(drift.observe(after));
}

TEST(DriftDetector, WarmupSuppressesEarlyAlarms) {
  DriftDetectorConfig config;
  config.warmup = 10;
  DriftDetector drift(1, config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(drift.observe({i % 2 == 0 ? 0.01 : 0.6}));
  }
}

TEST(DriftDetector, RearmResetsReference) {
  DriftDetector drift(2);
  const std::vector<double> before{0.05, 0.05};
  const std::vector<double> after{0.5, 0.5};
  for (int i = 0; i < 20; ++i) drift.observe(before);
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) fired = drift.observe(after);
  ASSERT_TRUE(fired);
  drift.rearm(after);
  // The new regime is now the reference: stationary at `after` stays calm.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(drift.observe(after));
  }
  EXPECT_EQ(drift.triggers(), 1u);
}

TEST(DriftDetector, RejectsSizeMismatch) {
  DriftDetector drift(2);
  EXPECT_THROW(drift.observe({0.1}), std::invalid_argument);
  EXPECT_THROW(drift.rearm({0.1, 0.2, 0.3}), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Replanner
// --------------------------------------------------------------------------

TEST(Replanner, ColdPlanMatchesCoreRome) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SmallWorld w(seed);
    const core::ProbBoundEr engine(*w.system, *w.model);
    core::RomeStats rome_stats;
    const core::Selection expected =
        core::rome(*w.system, w.costs, w.budget, engine, &rome_stats);

    Replanner replanner(*w.system, w.costs);
    ReplanStats stats;
    const core::Selection got = replanner.replan(engine, w.budget, &stats);
    EXPECT_EQ(got.paths, expected.paths) << "seed " << seed;
    EXPECT_DOUBLE_EQ(got.objective, expected.objective);
    EXPECT_FALSE(stats.warm);
    EXPECT_EQ(stats.rome.gain_evaluations, rome_stats.gain_evaluations);
  }
}

TEST(Replanner, WarmReplanOnSameEngineKeepsSelectionCheaply) {
  SmallWorld w(7);
  const core::ProbBoundEr engine(*w.system, *w.model);
  Replanner replanner(*w.system, w.costs);
  ReplanStats cold;
  const core::Selection first = replanner.replan(engine, w.budget, &cold);
  ReplanStats warm;
  const core::Selection second = replanner.replan(engine, w.budget, &warm);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.reused, first.paths.size());
  EXPECT_EQ(second.paths, first.paths);
  // The whole point: substantially fewer gain evaluations than the cold
  // run (the stale-seeded heap still pays ~1 eval/pop plus requeues).
  EXPECT_LT(static_cast<double>(warm.rome.gain_evaluations),
            0.7 * static_cast<double>(cold.rome.gain_evaluations));
}

TEST(Replanner, WarmReplanTracksColdObjectiveAfterDrift) {
  SmallWorld w(11, 2.0);
  Rng drift_rng(99);
  const failures::FailureModel shifted =
      failures::markopoulou_model(w.graph.edge_count(), drift_rng, 8.0);

  const core::ProbBoundEr engine_before(*w.system, *w.model);
  const core::ProbBoundEr engine_after(*w.system, shifted);

  Replanner replanner(*w.system, w.costs);
  replanner.replan(engine_before, w.budget);
  ReplanStats warm;
  const core::Selection warm_sel =
      replanner.replan(engine_after, w.budget, &warm);

  core::RomeStats cold;
  const core::Selection cold_sel =
      core::rome(*w.system, w.costs, w.budget, engine_after, &cold);

  EXPECT_TRUE(warm.warm);
  EXPECT_GE(warm_sel.objective, 0.95 * cold_sel.objective);
  EXPECT_LT(warm.rome.gain_evaluations, cold.gain_evaluations);
}

TEST(Replanner, ResetForcesColdPlan) {
  SmallWorld w(13);
  const core::ProbBoundEr engine(*w.system, *w.model);
  Replanner replanner(*w.system, w.costs);
  replanner.replan(engine, w.budget);
  replanner.reset();
  ReplanStats stats;
  replanner.replan(engine, w.budget, &stats);
  EXPECT_FALSE(stats.warm);
  EXPECT_EQ(replanner.plans(), 2u);
}

// --------------------------------------------------------------------------
// Pipeline
// --------------------------------------------------------------------------

struct PipelineWorld {
  SmallWorld w;
  tomo::GroundTruth truth;
  failures::FailureTrace trace;

  explicit PipelineWorld(std::uint64_t seed, std::size_t epochs = 40)
      : w(seed), trace(0) {
    Rng truth_rng(seed * 23);
    truth = tomo::random_delays(w.graph.edge_count(), truth_rng);
    Rng trace_rng(seed * 19);
    trace = failures::FailureTrace::record(*w.model, epochs, trace_rng);
  }

  PipelineConfig config(ReplanPolicy policy) const {
    PipelineConfig c;
    c.budget = w.budget;
    c.policy = policy;
    c.period = 10;
    c.oracle = [this](std::size_t) { return *w.model; };
    return c;
  }
};

TEST(Pipeline, RunIsDeterministic) {
  PipelineWorld pw(3);
  Pipeline a(*pw.w.system, pw.w.costs, pw.truth,
             pw.config(ReplanPolicy::kAdaptive));
  Pipeline b(*pw.w.system, pw.w.costs, pw.truth,
             pw.config(ReplanPolicy::kAdaptive));
  Rng rng_a(42);
  Rng rng_b(42);
  const PipelineResult ra = a.run(pw.trace, rng_a);
  const PipelineResult rb = b.run(pw.trace, rng_b);
  EXPECT_EQ(ra.series, rb.series);
  EXPECT_EQ(ra.cumulative_rank, rb.cumulative_rank);
  EXPECT_EQ(ra.replans, rb.replans);
  EXPECT_EQ(ra.probe_bytes, rb.probe_bytes);
  EXPECT_EQ(ra.final_selection.paths, rb.final_selection.paths);
}

TEST(Pipeline, StaticPolicyNeverReplans) {
  PipelineWorld pw(5);
  Pipeline pipeline(*pw.w.system, pw.w.costs, pw.truth,
                    pw.config(ReplanPolicy::kStatic));
  Rng rng(1);
  const PipelineResult r = pipeline.run(pw.trace, rng);
  EXPECT_EQ(r.replans, 0u);
  EXPECT_EQ(r.epochs, pw.trace.epoch_count());
  EXPECT_EQ(r.series.rows(), pw.trace.epoch_count());
  EXPECT_GT(r.cumulative_rank, 0.0);
}

TEST(Pipeline, OracleReplansEveryEpochButLast) {
  PipelineWorld pw(7, 20);
  Pipeline pipeline(*pw.w.system, pw.w.costs, pw.truth,
                    pw.config(ReplanPolicy::kOracle));
  Rng rng(1);
  const PipelineResult r = pipeline.run(pw.trace, rng);
  EXPECT_EQ(r.replans, pw.trace.epoch_count() - 1);
  EXPECT_DOUBLE_EQ(r.replan_fraction(),
                   static_cast<double>(r.replans) /
                       static_cast<double>(r.epochs));
}

TEST(Pipeline, PeriodicPolicyReplansOnSchedule) {
  PipelineWorld pw(9, 40);
  Pipeline pipeline(*pw.w.system, pw.w.costs, pw.truth,
                    pw.config(ReplanPolicy::kPeriodic));
  Rng rng(1);
  const PipelineResult r = pipeline.run(pw.trace, rng);
  // period = 10 over 40 epochs, minus the suppressed final epoch: 10, 20,
  // 30 fire; 40 would be the last epoch.
  EXPECT_EQ(r.replans, 3u);
}

TEST(Pipeline, RejectsBadConfig) {
  PipelineWorld pw(1);
  PipelineConfig config = pw.config(ReplanPolicy::kStatic);
  config.budget = 0.0;
  EXPECT_THROW(Pipeline(*pw.w.system, pw.w.costs, pw.truth, config),
               std::invalid_argument);
  PipelineConfig no_oracle = pw.config(ReplanPolicy::kOracle);
  no_oracle.oracle = nullptr;
  EXPECT_THROW(Pipeline(*pw.w.system, pw.w.costs, pw.truth, no_oracle),
               std::invalid_argument);
  Pipeline ok(*pw.w.system, pw.w.costs, pw.truth,
              pw.config(ReplanPolicy::kStatic));
  failures::FailureTrace wrong(pw.w.graph.edge_count() + 1);
  Rng rng(1);
  EXPECT_THROW(ok.run(wrong, rng), std::invalid_argument);
}

TEST(ReplanPolicyNames, RoundTrip) {
  for (ReplanPolicy policy :
       {ReplanPolicy::kStatic, ReplanPolicy::kAdaptive,
        ReplanPolicy::kPeriodic, ReplanPolicy::kOracle}) {
    EXPECT_EQ(parse_replan_policy(to_string(policy)), policy);
  }
  EXPECT_THROW(parse_replan_policy("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace rnt::online
