# Runs a figure driver and diffs its stdout bitwise against a committed
# golden file.  Invoked by the golden_* ctest entries (tests/CMakeLists.txt):
#
#   cmake -DDRIVER=<exe> -DARGS="--flag value ..." -DGOLDEN=<file>
#         -DOUT=<scratch> -P run_golden.cmake
#
# The drivers' --golden flag drops every wall-clock column, so the output
# is a pure function of (seed, engine, parameters) — any byte difference
# is a real behavior change, including thread-count nondeterminism.
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND ${DRIVER} ${arg_list}
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "${DRIVER} exited with ${run_rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "output ${OUT} differs from golden ${GOLDEN}; "
                      "if the change is intended, regenerate the golden "
                      "with the command above and commit it")
endif()
