// Tests for the graph algorithm extensions: Yen's k-shortest paths and
// betweenness centrality.
#include <gtest/gtest.h>

#include <set>

#include "graph/centrality.h"
#include "graph/generators.h"
#include "graph/yen.h"
#include "util/rng.h"

namespace rnt::graph {
namespace {

// --------------------------------------------------------------------------
// Yen's k shortest paths
// --------------------------------------------------------------------------

/// Diamond: two 2-hop routes 0-1-3 (weight 2) and 0-2-3 (weight 3), plus a
/// direct heavy edge 0-3 (weight 4).
Graph diamond() {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 2.0);
  g.add_edge(0, 3, 4.0);
  return g;
}

TEST(Yen, EnumeratesInWeightOrder) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].weight, 3.0);
  EXPECT_DOUBLE_EQ(paths[2].weight, 4.0);
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(paths[1].nodes, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(paths[2].nodes, (std::vector<NodeId>{0, 3}));
}

TEST(Yen, RespectsK) {
  const Graph g = diamond();
  EXPECT_EQ(k_shortest_paths(g, 0, 3, 1).size(), 1u);
  EXPECT_EQ(k_shortest_paths(g, 0, 3, 2).size(), 2u);
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 0).empty());
}

TEST(Yen, PathsAreLooplessAndDistinct) {
  Rng rng(7);
  const Graph g = connected_erdos_renyi(25, 60, rng, WeightModel::kUniformReal);
  const auto paths = k_shortest_paths(g, 0, 12, 8);
  ASSERT_FALSE(paths.empty());
  std::set<std::vector<NodeId>> seen;
  for (const Path& p : paths) {
    // Loopless: all nodes distinct.
    std::set<NodeId> nodes(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(nodes.size(), p.nodes.size());
    // Distinct paths.
    EXPECT_TRUE(seen.insert(p.nodes).second);
    // Endpoint correctness.
    EXPECT_EQ(p.nodes.front(), 0u);
    EXPECT_EQ(p.nodes.back(), 12u);
  }
  // Ascending weights.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].weight + 1e-12, paths[i - 1].weight);
  }
}

TEST(Yen, FirstPathMatchesDijkstra) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g =
        connected_erdos_renyi(20, 45, rng, WeightModel::kUniformReal);
    const auto yen = k_shortest_paths(g, 1, 15, 3);
    const auto direct = shortest_path(g, 1, 15);
    ASSERT_FALSE(yen.empty());
    ASSERT_TRUE(direct.has_value());
    EXPECT_NEAR(yen[0].weight, direct->weight, 1e-9);
  }
}

TEST(Yen, WeightsAreConsistentWithEdges) {
  Rng rng(9);
  const Graph g = connected_erdos_renyi(15, 35, rng, WeightModel::kUniformReal);
  for (const Path& p : k_shortest_paths(g, 0, 9, 6)) {
    double w = 0.0;
    for (EdgeId e : p.edges) w += g.edge(e).weight;
    EXPECT_NEAR(w, p.weight, 1e-9);
  }
}

TEST(Yen, DisconnectedAndDegenerate) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 3).empty());
  EXPECT_TRUE(k_shortest_paths(g, 0, 0, 3).empty());
  EXPECT_THROW(k_shortest_paths(g, 0, 9, 3), std::out_of_range);
}

TEST(Yen, ExhaustsAllPathsInSmallGraph) {
  // Triangle 0-1-2: exactly two loopless paths 0->2.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  const auto paths = k_shortest_paths(g, 0, 2, 10);
  EXPECT_EQ(paths.size(), 2u);
}

// --------------------------------------------------------------------------
// Betweenness centrality
// --------------------------------------------------------------------------

TEST(Centrality, StarCenterDominates) {
  // Star: center 0, leaves 1..5.  Center lies on all 10 leaf pairs.
  Graph g(6);
  for (NodeId leaf = 1; leaf < 6; ++leaf) g.add_edge(0, leaf);
  const auto c = betweenness_centrality(g);
  EXPECT_NEAR(c[0], 10.0, 1e-9);
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    EXPECT_NEAR(c[leaf], 0.0, 1e-9);
  }
  EXPECT_EQ(nodes_by_centrality(g)[0], 0u);
}

TEST(Centrality, PathGraphValues) {
  // Path 0-1-2-3: betweenness of node 1 = pairs (0,2),(0,3) -> 2;
  // node 2 symmetric.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto c = betweenness_centrality(g);
  EXPECT_NEAR(c[0], 0.0, 1e-9);
  EXPECT_NEAR(c[1], 2.0, 1e-9);
  EXPECT_NEAR(c[2], 2.0, 1e-9);
  EXPECT_NEAR(c[3], 0.0, 1e-9);
}

TEST(Centrality, SplitsEqualPaths) {
  // 4-cycle: two equal shortest paths between opposite corners; each
  // intermediate node carries half a pair.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const auto c = betweenness_centrality(g);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_NEAR(c[n], 0.5, 1e-9) << "node " << n;
  }
}

TEST(Centrality, RespectsWeights) {
  // Triangle where the direct edge 0-2 is heavy: node 1 carries pair (0,2).
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 10.0);
  const auto c = betweenness_centrality(g);
  EXPECT_NEAR(c[1], 1.0, 1e-9);
  EXPECT_NEAR(c[0], 0.0, 1e-9);
}

TEST(Centrality, SortersAreConsistent) {
  Rng rng(11);
  const Graph g = barabasi_albert(60, 2, rng);
  const auto by_c = nodes_by_centrality(g);
  const auto by_d = nodes_by_degree(g);
  ASSERT_EQ(by_c.size(), g.node_count());
  ASSERT_EQ(by_d.size(), g.node_count());
  // Degree sorter: verify descending degrees.
  for (std::size_t i = 1; i < by_d.size(); ++i) {
    EXPECT_GE(g.degree(by_d[i - 1]), g.degree(by_d[i]));
  }
  // In a BA graph, the top-centrality node should be a high-degree hub.
  const double mean_deg = 2.0 * static_cast<double>(g.edge_count()) /
                          static_cast<double>(g.node_count());
  EXPECT_GT(static_cast<double>(g.degree(by_c[0])), mean_deg);
}

TEST(Centrality, EmptyGraph) {
  EXPECT_TRUE(betweenness_centrality(Graph(0)).empty());
}

}  // namespace
}  // namespace rnt::graph
