// Tests for CGLS (dense and sparse) and the least-squares estimation path:
// exact solves on consistent systems, minimum-norm behavior, noise
// averaging vs the basis-subsystem solver.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "exp/workload.h"
#include "linalg/cgls.h"
#include "linalg/elimination.h"
#include "tomo/estimation.h"
#include "util/rng.h"

namespace rnt {
namespace {

TEST(Cgls, SolvesSquareConsistentSystem) {
  linalg::Matrix a{{2, 1}, {1, 3}};
  const std::vector<double> b = {5, 10};
  const auto result = linalg::cgls_solve(a, b);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-8);
  EXPECT_NEAR(result.x[1], 3.0, 1e-8);
  EXPECT_NEAR(result.residual_norm, 0.0, 1e-8);
}

TEST(Cgls, OverdeterminedLeastSquares) {
  // Three noisy observations of a single unknown: LS = mean.
  linalg::Matrix a{{1}, {1}, {1}};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const auto result = linalg::cgls_solve(a, b);
  EXPECT_NEAR(result.x[0], 2.0, 1e-10);
  EXPECT_NEAR(result.residual_norm, std::sqrt(2.0), 1e-8);
}

TEST(Cgls, UnderdeterminedGivesMinimumNorm) {
  // x0 + x1 = 2: min-norm solution is (1, 1).
  linalg::Matrix a{{1, 1}};
  const std::vector<double> b = {2.0};
  const auto result = linalg::cgls_solve(a, b);
  EXPECT_NEAR(result.x[0], 1.0, 1e-10);
  EXPECT_NEAR(result.x[1], 1.0, 1e-10);
}

TEST(Cgls, SparseMatchesDense) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t rows = 4 + rng.index(8);
    const std::size_t cols = 3 + rng.index(6);
    linalg::Matrix a(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.bernoulli(0.4)) a(r, c) = 1.0;
      }
    }
    std::vector<double> b(rows);
    for (double& v : b) v = rng.uniform(-3, 3);
    const auto dense = linalg::cgls_solve(a, b);
    const auto sparse =
        linalg::cgls_solve(linalg::SparseMatrix::from_dense(a), b);
    ASSERT_EQ(dense.x.size(), sparse.x.size());
    for (std::size_t i = 0; i < dense.x.size(); ++i) {
      EXPECT_NEAR(dense.x[i], sparse.x[i], 1e-7);
    }
  }
}

TEST(Cgls, EmptyAndMismatchedInput) {
  const auto empty = linalg::cgls_solve(linalg::Matrix(), std::vector<double>{});
  EXPECT_TRUE(empty.converged);
  EXPECT_TRUE(empty.x.empty());
  linalg::Matrix a{{1, 0}};
  const std::vector<double> bad = {1.0, 2.0};
  EXPECT_THROW(linalg::cgls_solve(a, bad), std::invalid_argument);
}

TEST(Cgls, ResidualOrthogonalToRange) {
  // LS optimality: Aᵀ(b - Ax) = 0.
  Rng rng(2);
  linalg::Matrix a(8, 4);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  std::vector<double> b(8);
  for (double& v : b) v = rng.uniform(-2, 2);
  const auto result = linalg::cgls_solve(a, b);
  const auto ax = a.multiply(std::span<const double>(result.x));
  std::vector<double> r(8);
  for (std::size_t i = 0; i < 8; ++i) r[i] = b[i] - ax[i];
  const auto atr = a.transposed().multiply(std::span<const double>(r));
  for (double v : atr) {
    EXPECT_NEAR(v, 0.0, 1e-7);
  }
}

TEST(LsqEstimation, AgreesWithBasisSolverNoiseless) {
  const exp::Workload w = exp::make_custom_workload(40, 80, 60, 5);
  Rng rng(6);
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto v = w.failures->sample(rng);
  const auto meas = tomo::simulate_measurements(*w.system, all, truth, v,
                                                /*noise_std=*/0.0, rng);
  const auto basis = tomo::estimate_link_metrics(*w.system, meas, truth);
  const auto lsq = tomo::estimate_link_metrics_lsq(*w.system, meas, truth);
  EXPECT_EQ(basis.identifiable, lsq.identifiable);
  EXPECT_NEAR(lsq.mean_abs_error, 0.0, 1e-6);
  for (std::size_t l : lsq.identifiable) {
    EXPECT_NEAR(lsq.estimates[l], basis.estimates[l], 1e-6);
  }
}

TEST(LsqEstimation, BeatsBasisSolverUnderNoise) {
  // With redundant measurements and noise, LS averages; the basis solver
  // commits to one noisy subsystem.  Compare mean errors over scenarios.
  const exp::Workload w = exp::make_custom_workload(40, 80, 80, 7);
  Rng rng(8);
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  double basis_err = 0.0;
  double lsq_err = 0.0;
  const double noise = 0.1;
  for (int s = 0; s < 25; ++s) {
    const auto v = w.failures->sample(rng);
    const auto meas =
        tomo::simulate_measurements(*w.system, all, truth, v, noise, rng);
    basis_err +=
        tomo::estimate_link_metrics(*w.system, meas, truth).mean_abs_error;
    lsq_err +=
        tomo::estimate_link_metrics_lsq(*w.system, meas, truth).mean_abs_error;
  }
  EXPECT_LT(lsq_err, basis_err);
}

TEST(LsqEstimation, EmptyMeasurements) {
  const exp::Workload w = exp::make_custom_workload(20, 40, 20, 9);
  tomo::GroundTruth truth;
  truth.link_metrics.assign(w.graph.edge_count(), 1.0);
  tomo::Measurements empty;
  const auto result =
      tomo::estimate_link_metrics_lsq(*w.system, empty, truth);
  EXPECT_TRUE(result.identifiable.empty());
}

TEST(Cgls, RankDeficientColumnsGiveMinimumNorm) {
  // Column 1 duplicates column 0, so solutions form a line: every LS
  // solution has x0 + x1 = 2 and x2 = 3; minimum norm picks (1, 1, 3).
  linalg::Matrix a{{1, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  const std::vector<double> b = {2.0, 3.0, 5.0};
  const auto result = linalg::cgls_solve(a, b);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-8);
  EXPECT_NEAR(result.x[1], 1.0, 1e-8);
  EXPECT_NEAR(result.x[2], 3.0, 1e-8);
  EXPECT_NEAR(result.residual_norm, 0.0, 1e-8);
  // The sparse variant agrees on the same rank-deficient system.
  const auto sparse = linalg::cgls_solve(linalg::SparseMatrix::from_dense(a), b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(sparse.x[i], result.x[i], 1e-8);
  }
}

TEST(Cgls, RankDeficientRowsAverageRedundantProbes) {
  // Duplicate measurement rows with conflicting values: LS averages them
  // instead of discarding the redundancy.
  linalg::Matrix a{{1, 0}, {1, 0}, {0, 1}};
  const std::vector<double> b = {1.0, 3.0, 2.0};
  const auto result = linalg::cgls_solve(a, b);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 2.0, 1e-10);
  EXPECT_NEAR(result.x[1], 2.0, 1e-10);
  EXPECT_NEAR(result.residual_norm, std::sqrt(2.0), 1e-8);
}

TEST(Cgls, ZeroRowsCarryNoInformation) {
  // An all-zero row (a fully failed path) only adds a constant to the
  // residual — the solution must ignore it, dense and sparse alike.
  linalg::Matrix a{{1, 0}, {0, 0}, {0, 1}};
  const std::vector<double> b = {4.0, 7.0, -2.0};
  for (const auto& result :
       {linalg::cgls_solve(a, b),
        linalg::cgls_solve(linalg::SparseMatrix::from_dense(a), b)}) {
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x[0], 4.0, 1e-10);
    EXPECT_NEAR(result.x[1], -2.0, 1e-10);
    EXPECT_NEAR(result.residual_norm, 7.0, 1e-8);
  }
}

TEST(Cgls, InconsistentRankDeficientSystem) {
  // No exact solution (rows 0/1 disagree) *and* no unique LS solution
  // (rank 1 in a 2-column space): CGLS must still converge within its
  // iteration cap to the min-norm LS point.  Rows average to x0 + x1 = 2,
  // minimum norm picks (1, 1); the all-zero row only adds 5 to the
  // residual, giving ‖r‖ = sqrt(1 + 1 + 25).
  linalg::Matrix a{{1, 1}, {1, 1}, {0, 0}};
  const std::vector<double> b = {1.0, 3.0, 5.0};
  const auto result = linalg::cgls_solve(a, b);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 2 * a.cols());
  EXPECT_NEAR(result.x[0], 1.0, 1e-10);
  EXPECT_NEAR(result.x[1], 1.0, 1e-10);
  EXPECT_NEAR(result.residual_norm, std::sqrt(27.0), 1e-8);
}

TEST(Cgls, RankDeficientSolveIsDeterministic) {
  // The min-norm solution is unique, and the solver path is sequential:
  // repeated solves of the same rank-deficient system must agree bitwise
  // (the inference layer's thread-count determinism leans on this).
  Rng rng(11);
  linalg::Matrix a(10, 6);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      if (rng.bernoulli(0.4)) a(r, c) = 1.0;
    }
    a(r, 5) = a(r, 0);  // Duplicated column forces rank deficiency.
  }
  std::vector<double> b(10);
  for (double& v : b) v = rng.uniform(-2, 2);
  const auto first = linalg::cgls_solve(a, b);
  const auto second = linalg::cgls_solve(a, b);
  EXPECT_TRUE(first.converged);
  EXPECT_EQ(first.iterations, second.iterations);
  ASSERT_EQ(first.x.size(), second.x.size());
  for (std::size_t i = 0; i < first.x.size(); ++i) {
    EXPECT_EQ(first.x[i], second.x[i]);  // Bitwise, not approximate.
  }
  EXPECT_EQ(first.residual_norm, second.residual_norm);
}

TEST(Cgls, IterationCapReportsHonestResidual) {
  // A starved cap must be reported as non-convergence, with the residual
  // of the iterate actually reached — not the tolerance target.
  Rng rng(12);
  linalg::Matrix a(12, 8);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 8; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  std::vector<double> b(12);
  for (double& v : b) v = rng.uniform(-2, 2);
  linalg::CglsOptions starved;
  starved.max_iterations = 1;
  const auto capped = linalg::cgls_solve(a, b, starved);
  EXPECT_FALSE(capped.converged);
  EXPECT_EQ(capped.iterations, 1u);
  EXPECT_TRUE(std::isfinite(capped.residual_norm));
  // The full run converges and ends at a residual no worse than the
  // capped one (CGLS decreases ‖Ax − b‖ monotonically).
  const auto full = linalg::cgls_solve(a, b);
  EXPECT_TRUE(full.converged);
  EXPECT_LE(full.residual_norm, capped.residual_norm + 1e-12);
}

TEST(Cgls, AllZeroMatrixConvergesToZero) {
  // Aᵀb = 0 means x = 0 is already optimal; the solver must report
  // convergence without iterating instead of dividing by a zero norm.
  linalg::Matrix a(3, 2);
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const auto result = linalg::cgls_solve(a, b);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_DOUBLE_EQ(result.x[0], 0.0);
  EXPECT_DOUBLE_EQ(result.x[1], 0.0);
  EXPECT_NEAR(result.residual_norm, std::sqrt(14.0), 1e-12);
}

}  // namespace
}  // namespace rnt
