// Boolean network tomography subsystem (src/boolnt): hand-checked maximal
// identifiability on the paper's Fig. 1 topology and on line/star/complete
// graphs (vertex-connectivity corner cases), multi-failure localization
// semantics including the k=0/1 degeneracies, and bitwise determinism of
// the identifiability report across thread counts.
#include <gtest/gtest.h>

#include <algorithm>

#include "boolnt/hypothesis.h"
#include "boolnt/identifiability.h"
#include "boolnt/localize.h"
#include "exp/workload.h"
#include "failures/node_failure.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "tomo/localization.h"
#include "tomo/path_system.h"
#include "util/rng.h"

namespace rnt {
namespace {

using Candidates = std::vector<std::vector<std::uint32_t>>;

tomo::ProbePath probe(graph::NodeId s, graph::NodeId d,
                      std::vector<graph::EdgeId> links) {
  tomo::ProbePath p;
  p.source = s;
  p.destination = d;
  std::sort(links.begin(), links.end());
  p.hops = links.size();
  p.routing_weight = static_cast<double>(links.size());
  p.links = std::move(links);
  return p;
}

std::vector<std::size_t> all_paths(const tomo::PathSystem& system) {
  std::vector<std::size_t> subset(system.path_count());
  for (std::size_t i = 0; i < subset.size(); ++i) subset[i] = i;
  return subset;
}

// --------------------------------------------------------------------------
// Paper Fig. 1 topology (same reconstruction as test_paper_example.cpp):
// monitors m1..m6 = 0..5, hubs c1 = 6 / c2 = 7, links l1..l8 = edges
// (m1-c1),(m2-c1),(m3-c1),(m4-c2),(m5-c2),(m6-c2),(c1-c2),(m3-c2).
// --------------------------------------------------------------------------

constexpr graph::NodeId kM1 = 0, kM2 = 1, kM3 = 2, kM4 = 3, kM5 = 4, kM6 = 5;
constexpr graph::NodeId kC1 = 6, kC2 = 7;
constexpr graph::EdgeId kL7 = 6;

graph::Graph example_graph() {
  graph::Graph g(8);
  g.add_edge(kM1, kC1);  // l1
  g.add_edge(kM2, kC1);  // l2
  g.add_edge(kM3, kC1);  // l3
  g.add_edge(kM4, kC2);  // l4
  g.add_edge(kM5, kC2);  // l5
  g.add_edge(kM6, kC2);  // l6
  g.add_edge(kC1, kC2);  // l7
  g.add_edge(kM3, kC2);  // l8
  return g;
}

tomo::PathSystem example_system() {
  const graph::Graph g = example_graph();
  std::vector<tomo::ProbePath> paths;
  for (graph::NodeId a = kM1; a <= kM6; ++a) {
    for (graph::NodeId b = a + 1; b <= kM6; ++b) {
      const auto routed = graph::shortest_path(g, a, b);
      paths.push_back(tomo::make_probe_path(*routed));
    }
  }
  return tomo::PathSystem(g.edge_count(), std::move(paths));
}

TEST(PaperExample, EverySingleLinkIsIdentifiableFromAllPaths) {
  const tomo::PathSystem system = example_system();
  const auto space = boolnt::HypothesisSpace::links_of(system.link_count());
  const auto report = boolnt::identifiability_report(
      system, all_paths(system), space, 1);
  // Hand check: all 8 links lie on probed paths and no two links are
  // crossed by the same path set, so single failures are fully
  // identifiable — Ma–He level 1 at cap 1, Bartolini level 1 everywhere.
  EXPECT_EQ(report.k_cap, 1u);
  EXPECT_EQ(report.max_identifiable, 1u);
  for (const std::size_t level : report.per_component) {
    EXPECT_EQ(level, 1u);
  }
  EXPECT_EQ(report.sets_examined, 9u);  // The empty set plus 8 singletons.
}

TEST(PaperExample, FailedInterHubLinkLocalizesUniquely) {
  // The Section II narrative: "from the failure of path q11, the failed
  // link is l7".  With every pair probed, l7's failure pattern is unique.
  const tomo::PathSystem system = example_system();
  const auto space = boolnt::HypothesisSpace::links_of(system.link_count());
  failures::FailureVector v(system.link_count(), false);
  v[kL7] = true;
  const auto result = boolnt::localize_multi_failure(
      system, all_paths(system), v, space, 2);
  EXPECT_FALSE(result.no_failure);
  EXPECT_FALSE(result.truncated);
  ASSERT_EQ(result.candidates, Candidates{{kL7}});
}

TEST(PaperExample, HubFailureLocalizesUniquelyInNodeSpace) {
  const graph::Graph g = example_graph();
  const tomo::PathSystem system = example_system();
  const auto space = boolnt::HypothesisSpace::nodes_of(g);
  // Hub c2 downs l4,l5,l6,l7,l8; the surviving m1/m2/m3 star exonerates
  // m1,m2,m3 and c1, and only c2 hits every failed probe alone.
  const failures::FailureVector v = space.failure_vector({kC2});
  const auto result = boolnt::localize_multi_failure(
      system, all_paths(system), v, space, 1);
  ASSERT_EQ(result.candidates, Candidates{{kC2}});
}

// --------------------------------------------------------------------------
// Line graph: one probe over links in series — nothing distinguishes them.
// --------------------------------------------------------------------------

TEST(LineGraph, SeriesLinksAreNeverIdentifiable) {
  // 0 --l0-- 1 --l1-- 2 --l2-- 3, single end-to-end probe.
  tomo::PathSystem system(3, {probe(0, 3, {0, 1, 2})});
  const auto space = boolnt::HypothesisSpace::links_of(3);
  const auto report = boolnt::identifiability_report(
      system, all_paths(system), space, 2);
  // Any failing link produces the same one-bit signature: Ma–He 0, and no
  // link is even 1-identifiable.
  EXPECT_EQ(report.max_identifiable, 0u);
  for (const std::size_t level : report.per_component) {
    EXPECT_EQ(level, 0u);
  }
  // Localization accordingly returns all three singletons.
  failures::FailureVector v(3, false);
  v[1] = true;
  const auto result = boolnt::localize_multi_failure(
      system, all_paths(system), v, space, 1);
  EXPECT_EQ(result.candidates, (Candidates{{0}, {1}, {2}}));
}

// --------------------------------------------------------------------------
// Star graph: leaves 0..3 via link i to center 4, all leaf pairs probed.
// --------------------------------------------------------------------------

graph::Graph star_graph() {
  graph::Graph g(5);
  for (graph::NodeId leaf = 0; leaf < 4; ++leaf) {
    g.add_edge(leaf, 4);  // Link id == leaf id.
  }
  return g;
}

tomo::PathSystem star_system() {
  std::vector<tomo::ProbePath> paths;
  for (graph::NodeId a = 0; a < 4; ++a) {
    for (graph::NodeId b = a + 1; b < 4; ++b) {
      paths.push_back(probe(a, b, {a, b}));
    }
  }
  return tomo::PathSystem(4, std::move(paths));
}

TEST(StarGraph, LinkPairsAreIdentifiableTriplesAreNot) {
  const tomo::PathSystem system = star_system();
  const auto space = boolnt::HypothesisSpace::links_of(4);
  // Hand check at cap 2: singleton i fails exactly the three paths
  // through leaf i; pair {i,j} leaves exactly the opposite pair's path
  // alive — all signatures distinct, so Ma–He 2.
  const auto pairs = boolnt::identifiability_report(
      system, all_paths(system), space, 2);
  EXPECT_EQ(pairs.max_identifiable, 2u);
  // At cap 3 every triple kills all six probes, so triples collide with
  // each other and Ma–He stays 2.
  const auto triples = boolnt::identifiability_report(
      system, all_paths(system), space, 3);
  EXPECT_EQ(triples.k_cap, 3u);
  EXPECT_EQ(triples.max_identifiable, 2u);
}

TEST(StarGraph, CenterCutVertexDominatesNodeIdentifiability) {
  const graph::Graph g = star_graph();
  const tomo::PathSystem system = star_system();
  const auto space = boolnt::HypothesisSpace::nodes_of(g);  // 4 leaves + c.
  const auto report = boolnt::identifiability_report(
      system, all_paths(system), space, 2);
  // Hand check: {center} kills all probes, and so does {center, leaf} —
  // a size-1/size-2 collision, so Ma–He is 1.  The colliding pair
  // disagrees only about leaves, so each leaf is stuck at level 1 while
  // the center (every <=2-set without it leaves a probe alive) keeps
  // level 2.  Galesi-style: the cut vertex is the *easy* component and
  // its neighbors pay for it.
  EXPECT_EQ(report.k_cap, 2u);
  EXPECT_EQ(report.max_identifiable, 1u);
  for (graph::NodeId leaf = 0; leaf < 4; ++leaf) {
    EXPECT_EQ(report.per_component[leaf], 1u) << "leaf " << leaf;
  }
  EXPECT_EQ(report.per_component[4], 2u);  // The center.
}

// --------------------------------------------------------------------------
// Complete graph K4, one direct probe per node pair.
// --------------------------------------------------------------------------

graph::Graph complete_graph() {
  graph::Graph g(4);
  for (graph::NodeId a = 0; a < 4; ++a) {
    for (graph::NodeId b = a + 1; b < 4; ++b) {
      g.add_edge(a, b);
    }
  }
  return g;
}

tomo::PathSystem complete_system() {
  const graph::Graph g = complete_graph();
  std::vector<tomo::ProbePath> paths;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    paths.push_back(probe(g.edge(e).u, g.edge(e).v, {e}));
  }
  return tomo::PathSystem(g.edge_count(), std::move(paths));
}

TEST(CompleteGraph, SingleLinkProbesIdentifyEverything) {
  const tomo::PathSystem system = complete_system();
  const auto space = boolnt::HypothesisSpace::links_of(6);
  // One probe per link: the signature IS the failure set, so every cap is
  // fully identifiable.
  const auto report = boolnt::identifiability_report(
      system, all_paths(system), space, 3);
  EXPECT_EQ(report.max_identifiable, 3u);
  for (const std::size_t level : report.per_component) {
    EXPECT_EQ(level, 3u);
  }
}

TEST(CompleteGraph, NodeTriplesBlackOutTheGraph) {
  const graph::Graph g = complete_graph();
  const tomo::PathSystem system = complete_system();
  const auto space = boolnt::HypothesisSpace::nodes_of(g);
  // Hand check: singletons fail 3 probes, pairs fail 5 (the opposite
  // pair's probe survives) — all distinct.  Any node triple fails all 6
  // probes, so triples collide: Ma–He = 2 = vertex connectivity - 1.
  const auto report = boolnt::identifiability_report(
      system, all_paths(system), space, 3);
  EXPECT_EQ(report.k_cap, 3u);
  EXPECT_EQ(report.max_identifiable, 2u);
}

// --------------------------------------------------------------------------
// Degeneracies and equivalences.
// --------------------------------------------------------------------------

TEST(Localize, NoFailureYieldsTheEmptyHypothesis) {
  const tomo::PathSystem system = star_system();
  const auto space = boolnt::HypothesisSpace::links_of(4);
  const failures::FailureVector v(4, false);
  const auto result = boolnt::localize_multi_failure(
      system, all_paths(system), v, space, 2);
  EXPECT_TRUE(result.no_failure);
  EXPECT_EQ(result.candidates, Candidates{{}});
}

TEST(Localize, ZeroFailureCapExplainsNothing) {
  const tomo::PathSystem system = star_system();
  const auto space = boolnt::HypothesisSpace::links_of(4);
  failures::FailureVector v(4, false);
  v[0] = true;
  const auto result = boolnt::localize_multi_failure(
      system, all_paths(system), v, space, 0);
  EXPECT_FALSE(result.no_failure);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(Localize, KEqualsOneMatchesSingleLinkLocalization) {
  const tomo::PathSystem system = example_system();
  const auto space = boolnt::HypothesisSpace::links_of(system.link_count());
  const auto subset = all_paths(system);
  for (std::size_t l = 0; l < system.link_count(); ++l) {
    failures::FailureVector v(system.link_count(), false);
    v[l] = true;
    const auto single = tomo::localize_single_failure(system, subset, v);
    const auto multi =
        boolnt::localize_multi_failure(system, subset, v, space, 1);
    Candidates expected;
    for (const graph::EdgeId c : single.candidates) expected.push_back({c});
    EXPECT_EQ(multi.candidates, expected) << "link " << l;
  }
}

TEST(Identifiability, ZeroCapDegenerates) {
  const tomo::PathSystem system = star_system();
  const auto space = boolnt::HypothesisSpace::links_of(4);
  const auto report = boolnt::identifiability_report(
      system, all_paths(system), space, 0);
  EXPECT_EQ(report.k_cap, 0u);
  EXPECT_EQ(report.max_identifiable, 0u);
  for (const std::size_t level : report.per_component) {
    EXPECT_EQ(level, 0u);
  }
}

TEST(Identifiability, ReportIsBitwiseIdenticalAcrossThreadCounts) {
  // Large enough that the threaded signing path actually engages
  // (>= 256 sets): a 20-link workload at cap 3 signs 1351 sets.
  const exp::Workload w = exp::make_custom_workload(14, 20, 40, 7);
  const auto links = boolnt::HypothesisSpace::links_of(w.system->link_count());
  const auto nodes = boolnt::HypothesisSpace::nodes_of(w.graph);
  std::vector<std::size_t> subset(w.system->path_count());
  for (std::size_t i = 0; i < subset.size(); ++i) subset[i] = i;
  for (const boolnt::HypothesisSpace* space : {&links, &nodes}) {
    const auto t1 =
        boolnt::identifiability_report(*w.system, subset, *space, 3, 1);
    const auto t4 =
        boolnt::identifiability_report(*w.system, subset, *space, 3, 4);
    EXPECT_EQ(t1.k_cap, t4.k_cap);
    EXPECT_EQ(t1.max_identifiable, t4.max_identifiable);
    EXPECT_EQ(t1.per_component, t4.per_component);
    EXPECT_EQ(t1.sets_examined, t4.sets_examined);
  }
}

TEST(Score, MultiLocalizationCountsArePartitionAndDeterministic) {
  const exp::Workload w = exp::make_custom_workload(10, 14, 24, 3);
  const auto space = boolnt::HypothesisSpace::nodes_of(w.graph);
  std::vector<std::size_t> subset(w.system->path_count());
  for (std::size_t i = 0; i < subset.size(); ++i) subset[i] = i;
  Rng rng_a(99);
  const auto a = boolnt::score_multi_localization(*w.system, subset, space,
                                                  2, 120, rng_a);
  EXPECT_EQ(a.trials, 120u);
  EXPECT_EQ(a.exact + a.ambiguous + a.misled + a.invisible, a.trials);
  Rng rng_b(99);
  const auto b = boolnt::score_multi_localization(*w.system, subset, space,
                                                  2, 120, rng_b);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.ambiguous, b.ambiguous);
  EXPECT_EQ(a.misled, b.misled);
  EXPECT_EQ(a.invisible, b.invisible);
  EXPECT_EQ(a.mean_candidates, b.mean_candidates);
}

TEST(NodeFamily, StarMarginalsMatchClosedForm) {
  const graph::Graph g = star_graph();
  const auto model = failures::NodeFailureModel::from_graph(
      g, failures::uniform_model(g.edge_count(), 0.0),
      {0.1, 0.2, 0.3, 0.4, 0.5});
  const failures::FailureModel marginal = model.marginal_model();
  // Link i joins leaf i (probability p_i) to the center (0.5):
  // P(fail) = 1 - (1 - p_i) * (1 - 0.5).
  const double leaf_probs[] = {0.1, 0.2, 0.3, 0.4};
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_NEAR(marginal.probability(l),
                1.0 - (1.0 - leaf_probs[l]) * 0.5, 1e-12)
        << "link " << l;
  }
}

}  // namespace
}  // namespace rnt
