// Tests for the failure substrate: the Markopoulou power-law model,
// i.i.d. sampling, exactly-k scenarios, scenario probabilities (Eq. 2),
// and exhaustive enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "failures/failure_model.h"
#include "failures/scenario.h"
#include "failures/trace.h"
#include "util/rng.h"

namespace rnt::failures {
namespace {

TEST(FailureModel, ValidatesProbabilities) {
  EXPECT_NO_THROW(FailureModel({0.0, 0.5, 1.0}));
  EXPECT_THROW(FailureModel({-0.1}), std::invalid_argument);
  EXPECT_THROW(FailureModel({1.1}), std::invalid_argument);
}

TEST(FailureModel, ExpectedFailuresIsSum) {
  const FailureModel m({0.1, 0.2, 0.3});
  EXPECT_NEAR(m.expected_failures(), 0.6, 1e-12);
}

TEST(FailureModel, SampleRespectsExtremes) {
  const FailureModel m({0.0, 1.0, 0.0});
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto v = m.sample(rng);
    EXPECT_FALSE(v[0]);
    EXPECT_TRUE(v[1]);
    EXPECT_FALSE(v[2]);
  }
}

TEST(FailureModel, SampleFrequencyMatchesProbability) {
  const FailureModel m({0.25});
  Rng rng(2);
  int fails = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (m.sample(rng)[0]) ++fails;
  }
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.25, 0.01);
}

TEST(FailureModel, SampleExactlyK) {
  const FailureModel m({0.5, 0.5, 0.5, 0.5, 0.5});
  Rng rng(3);
  for (std::size_t k = 0; k <= 5; ++k) {
    const auto v = m.sample_exactly_k(k, rng);
    EXPECT_EQ(static_cast<std::size_t>(std::count(v.begin(), v.end(), true)),
              k);
  }
  EXPECT_THROW(m.sample_exactly_k(6, rng), std::invalid_argument);
}

TEST(FailureModel, SampleExactlyKWeighted) {
  // Link 0 is 9x more failure-prone; it should fail in most k=1 draws.
  const FailureModel m({0.9, 0.1});
  Rng rng(4);
  int first = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (m.sample_exactly_k(1, rng)[0]) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 0.9, 0.02);
}

TEST(FailureModel, SampleExactlyKWithZeroWeights) {
  const FailureModel m({0.0, 0.0, 0.0});
  Rng rng(5);
  const auto v = m.sample_exactly_k(2, rng);
  EXPECT_EQ(std::count(v.begin(), v.end(), true), 2);
}

TEST(FailureModel, ScenarioProbabilityEq2) {
  const FailureModel m({0.1, 0.2});
  EXPECT_NEAR(m.scenario_probability({false, false}), 0.9 * 0.8, 1e-12);
  EXPECT_NEAR(m.scenario_probability({true, false}), 0.1 * 0.8, 1e-12);
  EXPECT_NEAR(m.scenario_probability({true, true}), 0.1 * 0.2, 1e-12);
  EXPECT_THROW(m.scenario_probability({true}), std::invalid_argument);
}

TEST(FailureModel, PathAvailabilityEq3) {
  const FailureModel m({0.1, 0.2, 0.3});
  EXPECT_NEAR(m.path_availability({0, 2}), 0.9 * 0.7, 1e-12);
  EXPECT_NEAR(m.path_availability({}), 1.0, 1e-12);
}

// --------------------------------------------------------------------------
// Markopoulou model
// --------------------------------------------------------------------------

TEST(Markopoulou, ProbabilitiesAreNormalizedCounts) {
  const auto p = markopoulou_probabilities(100);
  ASSERT_EQ(p.size(), 100u);
  // Rank order: strictly decreasing in failure rank.
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_LE(p[i], p[i - 1]);
  }
  // Counts were normalized by the total, so probabilities sum to 1.
  const double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double x : p) {
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Markopoulou, TwoSegmentPowerLaw) {
  const std::size_t links = 1000;  // 2.5% -> 25 high-failure links
  const auto p = markopoulou_probabilities(links);
  // Inside the high segment: p(l) / p(2l) == 2^0.73.
  EXPECT_NEAR(p[0] / p[1], std::pow(2.0, 0.73), 1e-9);
  EXPECT_NEAR(p[9] / p[19], std::pow(2.0, 0.73), 1e-9);
  // Inside the low segment: exponent 1.35.
  EXPECT_NEAR(p[99] / p[199], std::pow(2.0, 1.35), 1e-9);
  // Continuity at the boundary: no large jump between ranks 25 and 26.
  EXPECT_LT(p[24] / p[25], 1.2);
}

TEST(Markopoulou, IntensityScalesLinearly) {
  const auto p1 = markopoulou_probabilities(50, 1.0);
  const auto p3 = markopoulou_probabilities(50, 3.0);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p3[i], std::min(1.0, 3.0 * p1[i]), 1e-12);
  }
  EXPECT_THROW(markopoulou_probabilities(50, -1.0), std::invalid_argument);
}

TEST(Markopoulou, ModelShufflesRanksDeterministically) {
  Rng rng1(9);
  Rng rng2(9);
  const auto m1 = markopoulou_model(64, rng1);
  const auto m2 = markopoulou_model(64, rng2);
  EXPECT_EQ(m1.probabilities(), m2.probabilities());
  // The multiset of probabilities equals the ranked list.
  auto sorted = m1.probabilities();
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const auto ranked = markopoulou_probabilities(64);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_NEAR(sorted[i], ranked[i], 1e-12);
  }
}

TEST(Markopoulou, EmptyAndTiny) {
  EXPECT_TRUE(markopoulou_probabilities(0).empty());
  const auto p = markopoulou_probabilities(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(UniformModel, AllEqual) {
  const auto m = uniform_model(10, 0.05);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(m.probability(i), 0.05);
  }
}

// --------------------------------------------------------------------------
// Scenario enumeration
// --------------------------------------------------------------------------

TEST(Scenario, EnumerationCoversAllAndSumsToOne) {
  const FailureModel m({0.3, 0.5, 0.1});
  std::size_t count = 0;
  double total_prob = 0.0;
  enumerate_scenarios(m, [&](const FailureVector& v, double p) {
    EXPECT_EQ(v.size(), 3u);
    ++count;
    total_prob += p;
  });
  EXPECT_EQ(count, 8u);
  EXPECT_NEAR(total_prob, 1.0, 1e-12);
}

TEST(Scenario, EnumerationGuardsLargeInstances) {
  const auto m = uniform_model(30, 0.1);
  EXPECT_THROW(enumerate_scenarios(m, [](const FailureVector&, double) {}),
               std::invalid_argument);
}

TEST(Scenario, EnumerationMatchesExpectedFailures) {
  // E[#failed] from enumeration must equal the sum of probabilities.
  const FailureModel m({0.2, 0.7, 0.05, 0.4});
  double expected = 0.0;
  enumerate_scenarios(m, [&](const FailureVector& v, double p) {
    expected += p * static_cast<double>(std::count(v.begin(), v.end(), true));
  });
  EXPECT_NEAR(expected, m.expected_failures(), 1e-12);
}

TEST(Scenario, SampleScenariosCount) {
  const auto m = uniform_model(5, 0.5);
  Rng rng(6);
  const auto scenarios = sample_scenarios(m, 17, rng);
  EXPECT_EQ(scenarios.size(), 17u);
  for (const auto& v : scenarios) EXPECT_EQ(v.size(), 5u);
}

TEST(Scenario, PathSurvives) {
  const FailureVector v = {false, true, false};
  EXPECT_TRUE(path_survives({0, 2}, v));
  EXPECT_FALSE(path_survives({0, 1}, v));
  EXPECT_TRUE(path_survives({}, v));
}

// --------------------------------------------------------------------------
// Failure traces
// --------------------------------------------------------------------------

TEST(Trace, WriteReadRoundTrip) {
  const auto m = uniform_model(8, 0.3);
  Rng rng(11);
  const FailureTrace trace = FailureTrace::record(m, 25, rng);
  std::stringstream buffer;
  trace.write(buffer);
  EXPECT_EQ(FailureTrace::read(buffer), trace);
}

TEST(Trace, ReadAcceptsCommentsWhitespaceAndDashRows) {
  std::istringstream in(
      "# a comment before the header\n"
      "\n"
      "4\n"
      "# a comment between epochs\n"
      "0 2\n"
      "   \t \n"  // Whitespace-only lines are skipped, not epochs.
      "-\n"
      "3\n");
  const FailureTrace trace = FailureTrace::read(in);
  EXPECT_EQ(trace.link_count(), 4u);
  ASSERT_EQ(trace.epoch_count(), 3u);
  EXPECT_EQ(trace.epoch(0), FailureVector({true, false, true, false}));
  EXPECT_EQ(trace.epoch(1), FailureVector({false, false, false, false}));
  EXPECT_EQ(trace.epoch(2), FailureVector({false, false, false, true}));
}

TEST(Trace, ReadRejectsBadHeaders) {
  {
    std::istringstream in("");  // No header at all.
    EXPECT_THROW(FailureTrace::read(in), std::runtime_error);
  }
  {
    std::istringstream in("0\n");  // Zero-link universe.
    EXPECT_THROW(FailureTrace::read(in), std::runtime_error);
  }
  {
    std::istringstream in("4 5\n0\n");  // Header must be a single count.
    EXPECT_THROW(FailureTrace::read(in), std::runtime_error);
  }
  {
    std::istringstream in("four\n");  // Non-numeric count.
    EXPECT_THROW(FailureTrace::read(in), std::runtime_error);
  }
}

TEST(Trace, ReadRejectsBadEpochRows) {
  const auto parse = [](const std::string& rows) {
    std::istringstream in("4\n" + rows);
    return FailureTrace::read(in);
  };
  EXPECT_THROW(parse("0 x\n"), std::runtime_error);   // Non-numeric id.
  EXPECT_THROW(parse("1a\n"), std::runtime_error);    // Partial parse.
  EXPECT_THROW(parse("-3\n"), std::runtime_error);    // Signed id.
  EXPECT_THROW(parse("+2\n"), std::runtime_error);
  EXPECT_THROW(parse("0 4\n"), std::runtime_error);   // Out of range.
  EXPECT_THROW(parse("0 - 1\n"), std::runtime_error); // '-' only stands alone.
  // Errors name the offending line.
  try {
    parse("0\n1 9\n");
    FAIL() << "expected out-of-range link id to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("9"), std::string::npos);
  }
}

TEST(Trace, WriteReadConcatenateReadChain) {
  // The full persistence chain: record two segments, round-trip each
  // through text, concatenate the round-tripped copies, then round-trip
  // the joined trace again.  Every epoch must survive both hops.
  const auto m = uniform_model(5, 0.4);
  Rng rng(17);
  const FailureTrace first = FailureTrace::record(m, 12, rng);
  const FailureTrace second = FailureTrace::record(m, 7, rng);

  const auto roundtrip = [](const FailureTrace& t) {
    std::stringstream buffer;
    t.write(buffer);
    return FailureTrace::read(buffer);
  };
  const FailureTrace joined =
      FailureTrace::concatenate({roundtrip(first), roundtrip(second)});
  ASSERT_EQ(joined.epoch_count(), 19u);
  const FailureTrace reread = roundtrip(joined);
  EXPECT_EQ(reread, joined);
  for (std::size_t i = 0; i < first.epoch_count(); ++i) {
    EXPECT_EQ(reread.epoch(i), first.epoch(i));
  }
  for (std::size_t i = 0; i < second.epoch_count(); ++i) {
    EXPECT_EQ(reread.epoch(first.epoch_count() + i), second.epoch(i));
  }
}

TEST(Trace, ReadErrorsNameTheOffendingToken) {
  const auto message_of = [](const std::string& text) {
    std::istringstream in(text);
    try {
      FailureTrace::read(in);
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of("4 5\n").find("header must be a single link count"),
            std::string::npos);
  EXPECT_NE(message_of("four\n").find("bad link count 'four' at line 1"),
            std::string::npos);
  EXPECT_NE(message_of("4\n0 x\n").find("bad link id 'x' at line 2"),
            std::string::npos);
  EXPECT_NE(
      message_of("4\n0 7\n").find("link id 7 out of range (links=4) at line 2"),
      std::string::npos);
  EXPECT_NE(message_of("# only comments\n").find("missing or zero link count"),
            std::string::npos);
}

TEST(Trace, ConcatenateJoinsSegmentsInOrder) {
  const auto m1 = uniform_model(6, 0.2);
  const auto m2 = uniform_model(6, 0.8);
  Rng rng(13);
  const FailureTrace a = FailureTrace::record(m1, 10, rng);
  const FailureTrace b = FailureTrace::record(m2, 15, rng);
  const FailureTrace joined = FailureTrace::concatenate({a, b});
  EXPECT_EQ(joined.link_count(), 6u);
  ASSERT_EQ(joined.epoch_count(), 25u);
  for (std::size_t i = 0; i < a.epoch_count(); ++i) {
    EXPECT_EQ(joined.epoch(i), a.epoch(i));
  }
  for (std::size_t i = 0; i < b.epoch_count(); ++i) {
    EXPECT_EQ(joined.epoch(a.epoch_count() + i), b.epoch(i));
  }
}

TEST(Trace, ConcatenateRejectsBadSegments) {
  EXPECT_THROW(FailureTrace::concatenate({}), std::invalid_argument);
  const FailureTrace six(6);
  const FailureTrace seven(7);
  EXPECT_THROW(FailureTrace::concatenate({six, seven}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rnt::failures
