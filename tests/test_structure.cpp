// Tests for the structural analysis extensions: LU decomposition, bridge /
// articulation detection, and the Gilbert-Elliott bursty failure model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "failures/gilbert_elliott.h"
#include "graph/bridges.h"
#include "graph/generators.h"
#include "graph/isp_topology.h"
#include "linalg/lu.h"
#include "util/rng.h"

namespace rnt {
namespace {

// --------------------------------------------------------------------------
// LU decomposition
// --------------------------------------------------------------------------

TEST(Lu, SolvesKnownSystem) {
  linalg::Matrix a{{2, 1}, {1, 3}};
  const std::vector<double> b = {5, 10};
  const auto x = linalg::lu_solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingularity) {
  linalg::Matrix a{{1, 2}, {2, 4}};
  linalg::LuDecomposition lu(a);
  EXPECT_TRUE(lu.is_singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  const std::vector<double> b = {1, 2};
  EXPECT_FALSE(lu.solve(b).has_value());
}

TEST(Lu, DeterminantKnownValues) {
  EXPECT_NEAR(linalg::LuDecomposition(linalg::Matrix::identity(4)).determinant(),
              1.0, 1e-12);
  linalg::Matrix a{{0, 1}, {1, 0}};  // Permutation: det = -1.
  EXPECT_NEAR(linalg::LuDecomposition(a).determinant(), -1.0, 1e-12);
  linalg::Matrix b{{2, 0}, {0, 3}};
  EXPECT_NEAR(linalg::LuDecomposition(b).determinant(), 6.0, 1e-12);
}

TEST(Lu, RandomSystemsRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.index(8);
    linalg::Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2, 2);
      a(r, r) += 3.0;  // Diagonally dominant: nonsingular.
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.uniform(-5, 5);
    const auto b = a.multiply(std::span<const double>(x_true));
    const auto x = linalg::lu_solve(a, b);
    ASSERT_TRUE(x.has_value());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
    }
  }
}

TEST(Lu, RejectsNonSquareAndBadRhs) {
  linalg::Matrix a(2, 3);
  EXPECT_THROW(linalg::LuDecomposition{a}, std::invalid_argument);
  linalg::Matrix sq = linalg::Matrix::identity(2);
  linalg::LuDecomposition lu(sq);
  const std::vector<double> bad = {1, 2, 3};
  EXPECT_THROW(lu.solve(bad), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Bridges and articulation points
// --------------------------------------------------------------------------

TEST(Bridges, PathGraphAllBridges) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto bridges = graph::find_bridges(g);
  EXPECT_EQ(bridges.size(), 3u);
  EXPECT_FALSE(graph::is_two_edge_connected(g));
  const auto arts = graph::find_articulation_points(g);
  EXPECT_EQ(arts, (std::vector<graph::NodeId>{1, 2}));
}

TEST(Bridges, CycleHasNone) {
  graph::Graph g(5);
  for (graph::NodeId i = 0; i < 5; ++i) {
    g.add_edge(i, static_cast<graph::NodeId>((i + 1) % 5));
  }
  EXPECT_TRUE(graph::find_bridges(g).empty());
  EXPECT_TRUE(graph::find_articulation_points(g).empty());
  EXPECT_TRUE(graph::is_two_edge_connected(g));
}

TEST(Bridges, BarbellBridgeBetweenCycles) {
  // Two triangles joined by one edge: that edge is the only bridge, its
  // endpoints are articulation points.
  graph::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  const graph::EdgeId bridge = g.add_edge(2, 3);
  const auto bridges = graph::find_bridges(g);
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_EQ(bridges[0], bridge);
  EXPECT_TRUE(graph::is_bridge(g, bridge));
  EXPECT_FALSE(graph::is_bridge(g, 0));
  const auto arts = graph::find_articulation_points(g);
  EXPECT_EQ(arts, (std::vector<graph::NodeId>{2, 3}));
}

TEST(Bridges, StarCenterIsArticulation) {
  graph::Graph g(5);
  for (graph::NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  const auto arts = graph::find_articulation_points(g);
  EXPECT_EQ(arts, (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(graph::find_bridges(g).size(), 4u);
}

TEST(Bridges, AgreesWithRemovalOracle) {
  // Property: e is a bridge iff removing it disconnects the graph (for a
  // connected base graph).  Cross-check on random connected graphs.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::connected_erdos_renyi(15, 20, rng);
    const auto bridges = graph::find_bridges(g);
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      // Rebuild without edge e.
      graph::Graph h(g.node_count());
      for (graph::EdgeId f = 0; f < g.edge_count(); ++f) {
        if (f == e) continue;
        const auto& edge = g.edge(f);
        h.add_edge(edge.u, edge.v, edge.weight);
      }
      const bool removal_disconnects = !h.is_connected();
      const bool reported =
          std::binary_search(bridges.begin(), bridges.end(), e);
      EXPECT_EQ(reported, removal_disconnects) << "edge " << e;
    }
  }
}

TEST(Bridges, DisconnectedGraphHandled) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(graph::find_bridges(g).size(), 2u);
  EXPECT_FALSE(graph::is_two_edge_connected(g));
}

TEST(Bridges, IspTopologiesHaveFewBridges) {
  // Calibrated ISP topologies are mesh-like in the core, but leaf
  // attachment edges are bridges; sanity-check the analysis runs at scale.
  Rng rng(3);
  const graph::Graph g =
      graph::build_isp_topology(graph::IspTopology::kAS3257, rng);
  const auto bridges = graph::find_bridges(g);
  EXPECT_LT(bridges.size(), g.edge_count() / 2);
}

// --------------------------------------------------------------------------
// Gilbert-Elliott bursty failures
// --------------------------------------------------------------------------

TEST(GilbertElliott, ValidatesInput) {
  EXPECT_THROW(failures::GilbertElliottModel({0.5}, 0.5, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(failures::GilbertElliottModel({1.0}, 2.0, Rng(1)),
               std::invalid_argument);
  EXPECT_NO_THROW(failures::GilbertElliottModel({0.0, 0.5}, 2.0, Rng(1)));
}

TEST(GilbertElliott, ZeroProbabilityNeverFails) {
  failures::GilbertElliottModel model({0.0, 0.0}, 3.0, Rng(2));
  for (int i = 0; i < 50; ++i) {
    const auto v = model.step();
    EXPECT_FALSE(v[0]);
    EXPECT_FALSE(v[1]);
  }
}

TEST(GilbertElliott, StationaryFrequencyMatches) {
  const double p = 0.2;
  failures::GilbertElliottModel model({p}, 4.0, Rng(3));
  int failed = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    if (model.step()[0]) ++failed;
  }
  EXPECT_NEAR(static_cast<double>(failed) / n, p, 0.02);
}

TEST(GilbertElliott, BurstLengthMatches) {
  const double burst = 6.0;
  failures::GilbertElliottModel model({0.3}, burst, Rng(4));
  // Measure mean run length of consecutive BAD epochs.
  int runs = 0;
  int bad_epochs = 0;
  bool prev = false;
  for (int i = 0; i < 120000; ++i) {
    const bool bad = model.step()[0];
    if (bad) {
      ++bad_epochs;
      if (!prev) ++runs;
    }
    prev = bad;
  }
  ASSERT_GT(runs, 0);
  EXPECT_NEAR(static_cast<double>(bad_epochs) / runs, burst, 0.6);
}

TEST(GilbertElliott, StationaryModelExportsMarginals) {
  failures::GilbertElliottModel model({0.1, 0.4}, 2.0, Rng(5));
  const auto stat = model.stationary_model();
  EXPECT_DOUBLE_EQ(stat.probability(0), 0.1);
  EXPECT_DOUBLE_EQ(stat.probability(1), 0.4);
  EXPECT_DOUBLE_EQ(model.mean_burst_length(), 2.0);
}

TEST(GilbertElliott, TemporalCorrelationExists) {
  // P(fail at t+1 | fail at t) must exceed the stationary probability —
  // the defining property distinguishing bursty from i.i.d. failures.
  failures::GilbertElliottModel model({0.15}, 5.0, Rng(6));
  int fail_now = 0;
  int fail_both = 0;
  bool prev = model.step()[0];
  for (int i = 0; i < 80000; ++i) {
    const bool bad = model.step()[0];
    if (prev) {
      ++fail_now;
      if (bad) ++fail_both;
    }
    prev = bad;
  }
  ASSERT_GT(fail_now, 100);
  const double conditional =
      static_cast<double>(fail_both) / static_cast<double>(fail_now);
  EXPECT_GT(conditional, 0.5);  // Far above the stationary 0.15.
}

}  // namespace
}  // namespace rnt
