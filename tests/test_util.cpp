// Unit tests for util: rng determinism and sampling, streaming statistics,
// flag parsing, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace rnt {
namespace {

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 16 && !any_diff; ++i) {
    any_diff = a.uniform() != b.uniform();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, IndexBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(13), 13u);
  }
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, IntegerInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.integer(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values should appear.
  EXPECT_THROW(rng.integer(3, 2), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(9);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(9);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(13);
  const std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(w)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(13);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
  }
}

TEST(Rng, GoldenSequenceIsPlatformIndependent) {
  // Every draw is built from raw mt19937_64 words (pinned by the C++
  // standard) with fully specified arithmetic, so the same seed must give
  // exactly these values on every platform and standard library.  If this
  // test fails, replayability of every seeded experiment is broken.
  {
    Rng r(42);
    EXPECT_EQ(r.next_word(), 13930160852258120406ull);
    EXPECT_EQ(r.next_word(), 11788048577503494824ull);
    EXPECT_EQ(r.next_word(), 13874630024467741450ull);
    EXPECT_EQ(r.next_word(), 2513787319205155662ull);
  }
  {
    Rng r(42);
    EXPECT_EQ(r.uniform(), 0.75515553295453897);
    EXPECT_EQ(r.uniform(), 0.63903139385469743);
    EXPECT_EQ(r.uniform(), 0.7521452007480266);
    EXPECT_EQ(r.uniform(), 0.13627268363243705);
  }
  {
    Rng r(42);
    const std::size_t expected[] = {6, 8, 5, 0, 0, 6};
    for (std::size_t want : expected) EXPECT_EQ(r.index(10), want);
  }
  {
    Rng r(42);
    const std::int64_t expected[] = {1, 3, 5, 0};
    for (std::int64_t want : expected) EXPECT_EQ(r.integer(-5, 5), want);
  }
  // The shaped draws route through libm (log/cos/sqrt/pow), whose last-ulp
  // rounding is not pinned by the standard; allow a tiny relative slack.
  {
    Rng r(42);
    EXPECT_NEAR(r.normal(), -0.48121769980184498, 1e-12);
    EXPECT_NEAR(r.normal(), 0.49458385623521361, 1e-12);
    EXPECT_NEAR(r.normal(), 0.3745542688498138, 1e-12);
  }
  {
    Rng r(42);
    EXPECT_NEAR(r.gamma(2.5), 1.5327196342135072, 1e-12);
    EXPECT_NEAR(r.gamma(2.5), 5.5854363413736925, 1e-12);
  }
  {
    Rng r(42);
    EXPECT_NEAR(r.beta(2.0, 3.0), 0.15009817504931397, 1e-12);
    EXPECT_NEAR(r.beta(2.0, 3.0), 0.13711612213560034, 1e-12);
  }
}

TEST(Rng, BoundedHandlesPowerOfTwoAndOne) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.bounded(1), 0u);
    EXPECT_LT(rng.bounded(16), 16u);
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_THROW(rng.bounded(0), std::invalid_argument);
}

TEST(Rng, NormalAndGammaMoments) {
  Rng rng(23);
  RunningStats n, g;
  for (int i = 0; i < 20000; ++i) {
    n.add(rng.normal());
    g.add(rng.gamma(3.0));
  }
  EXPECT_NEAR(n.mean(), 0.0, 0.03);
  EXPECT_NEAR(n.stddev(), 1.0, 0.03);
  EXPECT_NEAR(g.mean(), 3.0, 0.06);  // Gamma(k,1) mean k, var k.
  EXPECT_NEAR(g.stddev(), std::sqrt(3.0), 0.06);
}

// --------------------------------------------------------------------------
// RunningStats
// --------------------------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Unbiased (n-1).
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(21);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-3, 7);
    all.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

// --------------------------------------------------------------------------
// EmpiricalDistribution
// --------------------------------------------------------------------------

TEST(EmpiricalDistribution, CdfSteps) {
  EmpiricalDistribution d;
  for (double x : {1.0, 2.0, 3.0, 4.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(EmpiricalDistribution, Quantiles) {
  EmpiricalDistribution d;
  for (int i = 0; i <= 100; ++i) d.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
  EXPECT_THROW(d.quantile(1.5), std::invalid_argument);
}

TEST(EmpiricalDistribution, QuantileRequiresSamples) {
  EmpiricalDistribution d;
  EXPECT_THROW(d.quantile(0.5), std::logic_error);
}

TEST(EmpiricalDistribution, CdfCurveMonotone) {
  EmpiricalDistribution d;
  Rng rng(31);
  for (int i = 0; i < 300; ++i) d.add(rng.uniform(0, 10));
  const auto curve = d.cdf_curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalDistribution, InterleavedAddAndQuery) {
  EmpiricalDistribution d;
  d.add(5.0);
  EXPECT_DOUBLE_EQ(d.cdf(5.0), 1.0);
  d.add(1.0);  // Must re-sort lazily.
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.5);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
}

// --------------------------------------------------------------------------
// Flags
// --------------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "2.5", "--gamma",
                        "--name", "hello"};
  Flags flags(7, argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.get_double("beta", 0.0), 2.5);
  EXPECT_TRUE(flags.get_bool("gamma", false));
  EXPECT_EQ(flags.get_string("name", ""), "hello");
  EXPECT_NO_THROW(flags.finish());
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_EQ(flags.get_string("missing2", "d"), "d");
  EXPECT_FALSE(flags.get_bool("missing3", false));
}

TEST(Flags, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--oops=1"};
  Flags flags(2, argv);
  EXPECT_THROW(flags.finish(), std::invalid_argument);
}

TEST(Flags, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n=abc", "--x=1.2.3", "--b=maybe"};
  Flags flags(4, argv);
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(flags.get_bool("b", false), std::invalid_argument);
}

TEST(Flags, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Flags(2, argv), std::invalid_argument);
}

// --------------------------------------------------------------------------
// TablePrinter
// --------------------------------------------------------------------------

TEST(TablePrinter, AlignedOutputContainsCells) {
  TablePrinter t({"name", "value"});
  t.add_row(std::vector<std::string>{"alpha", "1"});
  t.add_row(std::vector<std::string>{"bb", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row(std::vector<double>{1.5, 2.25}, 2);
  std::ostringstream out;
  t.print(out, /*csv=*/true);
  EXPECT_EQ(out.str(), "a,b\n1.50,2.25\n");
}

TEST(TablePrinter, RejectsWidthMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row(std::vector<std::string>{"only-one"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(FormatHelpers, FmtAndMeanStd) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  const Summary sum = summarize(s);
  EXPECT_EQ(format_mean_std(sum, 1), "2.0 ± 1.4");
}

}  // namespace
}  // namespace rnt
