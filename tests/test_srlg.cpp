// Tests for the correlated (shared-risk-link-group) failure model
// extension: sampling semantics, marginals, and the interaction with the
// independence-based machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "failures/srlg.h"
#include "util/rng.h"

namespace rnt::failures {
namespace {

TEST(Srlg, ValidatesInput) {
  FailureModel bg({0.0, 0.0, 0.0});
  EXPECT_THROW(SrlgModel(bg, {RiskGroup{{0}, 1.5}}), std::invalid_argument);
  EXPECT_THROW(SrlgModel(bg, {RiskGroup{{7}, 0.1}}), std::out_of_range);
  EXPECT_NO_THROW(SrlgModel(bg, {RiskGroup{{0, 2}, 0.1}}));
}

TEST(Srlg, GroupFailsTogether) {
  // No background failures, one group that always fails.
  FailureModel bg({0.0, 0.0, 0.0, 0.0});
  SrlgModel model(bg, {RiskGroup{{1, 3}, 1.0}});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto v = model.sample(rng);
    EXPECT_FALSE(v[0]);
    EXPECT_TRUE(v[1]);
    EXPECT_FALSE(v[2]);
    EXPECT_TRUE(v[3]);
  }
}

TEST(Srlg, CorrelationIsVisible) {
  // Group of links {0,1} failing with p=0.5, no background: links 0 and 1
  // must be perfectly correlated.
  FailureModel bg({0.0, 0.0});
  SrlgModel model(bg, {RiskGroup{{0, 1}, 0.5}});
  Rng rng(2);
  int both = 0, only_one = 0, neither = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto v = model.sample(rng);
    if (v[0] && v[1]) ++both;
    else if (v[0] || v[1]) ++only_one;
    else ++neither;
  }
  EXPECT_EQ(only_one, 0);
  EXPECT_NEAR(static_cast<double>(both) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(neither) / n, 0.5, 0.02);
}

TEST(Srlg, MarginalsCombineBackgroundAndGroups) {
  FailureModel bg({0.1, 0.0, 0.2});
  SrlgModel model(bg, {RiskGroup{{0, 1}, 0.5}, RiskGroup{{0}, 0.2}});
  const FailureModel marginal = model.marginal_model();
  // Link 0: 1 - 0.9 * 0.5 * 0.8.
  EXPECT_NEAR(marginal.probability(0), 1.0 - 0.9 * 0.5 * 0.8, 1e-12);
  // Link 1: 1 - 1.0 * 0.5.
  EXPECT_NEAR(marginal.probability(1), 0.5, 1e-12);
  // Link 2: background only.
  EXPECT_NEAR(marginal.probability(2), 0.2, 1e-12);
}

TEST(Srlg, MarginalMatchesEmpiricalFrequency) {
  Rng setup(3);
  FailureModel bg = markopoulou_model(20, setup, 3.0);
  SrlgModel model = make_random_srlg_model(bg, 3, 4, 0.1, setup);
  const FailureModel marginal = model.marginal_model();
  Rng rng(4);
  std::vector<int> fails(20, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const auto v = model.sample(rng);
    for (std::size_t l = 0; l < 20; ++l) {
      if (v[l]) ++fails[l];
    }
  }
  for (std::size_t l = 0; l < 20; ++l) {
    EXPECT_NEAR(static_cast<double>(fails[l]) / n, marginal.probability(l),
                0.015)
        << "link " << l;
  }
}

TEST(Srlg, ExpectedFailuresUsesMarginals) {
  FailureModel bg({0.1, 0.1});
  SrlgModel model(bg, {RiskGroup{{0, 1}, 0.5}});
  const double per_link = 1.0 - 0.9 * 0.5;
  EXPECT_NEAR(model.expected_failures(), 2.0 * per_link, 1e-12);
}

TEST(Srlg, RandomBuilderMakesDisjointGroups) {
  Rng rng(5);
  FailureModel bg(std::vector<double>(30, 0.01));
  const SrlgModel model = make_random_srlg_model(bg, 4, 5, 0.2, rng);
  ASSERT_EQ(model.groups().size(), 4u);
  std::vector<bool> used(30, false);
  for (const RiskGroup& g : model.groups()) {
    EXPECT_EQ(g.links.size(), 5u);
    EXPECT_DOUBLE_EQ(g.probability, 0.2);
    for (std::uint32_t l : g.links) {
      EXPECT_FALSE(used[l]);  // Disjoint.
      used[l] = true;
    }
  }
  EXPECT_THROW(make_random_srlg_model(bg, 10, 5, 0.2, rng),
               std::invalid_argument);
}

TEST(Srlg, NoGroupsReducesToBackground) {
  Rng setup(6);
  FailureModel bg = markopoulou_model(15, setup, 2.0);
  SrlgModel model(bg, {});
  const FailureModel marginal = model.marginal_model();
  for (std::size_t l = 0; l < 15; ++l) {
    EXPECT_NEAR(marginal.probability(l), bg.probability(l), 1e-12);
  }
}

}  // namespace
}  // namespace rnt::failures
