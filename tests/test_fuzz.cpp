// Slow-tier fuzz sweeps (ctest label: slow).  These run the real fuzz
// loop at a depth the tier-1 suite cannot afford: a multi-thousand-case
// sweep over every registered check, seed diversity, the wall-clock cap,
// and the end-to-end fault-injection acceptance gate (inject a ProbBound
// defect, catch it, shrink it to a <= 6-link repro, replay it).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "testkit/checks.h"
#include "testkit/fuzzer.h"
#include "testkit/instance.h"

namespace rnt::testkit {
namespace {

TEST(FuzzSlow, DeepSweepAllChecksPasses) {
  FuzzConfig config;
  config.seed = 1;
  config.cases = 2000;
  config.minutes = 4.0;  // Safety net; the sweep takes a few seconds.
  std::ostringstream progress;
  const FuzzReport report = run_fuzz(config, &progress);
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? ""
                                   : report.failures.front().result.message);
  EXPECT_GE(report.cases_run, 100u);
  // Every registered check must have executed at least once.
  for (const Check& c : all_checks()) {
    EXPECT_GT(report.per_check.at(c.name), 0u) << c.name;
  }
}

TEST(FuzzSlow, SweepIsCleanAcrossSeeds) {
  for (const std::uint64_t seed : {2026u, 806u, 424242u}) {
    FuzzConfig config;
    config.seed = seed;
    config.cases = 300;
    const FuzzReport report = run_fuzz(config, nullptr);
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ": "
        << (report.failures.empty() ? ""
                                    : report.failures.front().result.message);
  }
}

TEST(FuzzSlow, WallClockCapStopsTheLoop) {
  FuzzConfig config;
  config.cases = 100000000;       // Effectively unbounded by count.
  config.minutes = 1.0 / 600.0;   // 100 ms.
  const FuzzReport report = run_fuzz(config, nullptr);
  EXPECT_TRUE(report.timed_out);
  EXPECT_LT(report.cases_run, config.cases);
}

TEST(FuzzSlow, InjectedFaultCaughtAcrossSeeds) {
  // The injected defect must not slip past the harness for any run seed.
  for (const std::uint64_t seed : {1u, 7u, 99u}) {
    FuzzConfig config;
    config.seed = seed;
    config.cases = 200;
    config.checks = {"probbound-dominates-er"};
    config.fault.probbound_deflate = 1e-3;
    config.out_dir = ::testing::TempDir();
    const FuzzReport report = run_fuzz(config, nullptr);
    ASSERT_FALSE(report.failures.empty()) << "seed " << seed;
    const FuzzFailure& failure = report.failures.front();
    EXPECT_LE(failure.instance.link_count(), 6u) << "seed " << seed;
    ASSERT_FALSE(failure.repro_path.empty());
    const Repro repro = load_repro(failure.repro_path);
    EXPECT_FALSE(replay_repro(repro, config.fault).passed);
    EXPECT_TRUE(replay_repro(repro).passed);
    std::remove(failure.repro_path.c_str());
  }
}

}  // namespace
}  // namespace rnt::testkit
