// Tests for e2e measurement completion: exact reconstruction of dependent
// path measurements, span/coverage semantics, and the robustness link —
// robust selections reconstruct more of the candidate set under failures.
#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "exp/workload.h"
#include "linalg/elimination.h"
#include "tomo/completion.h"
#include "tomo/estimation.h"

namespace rnt::tomo {
namespace {

/// Paths {l0}, {l1}, {l0,l1}, {l2}: path 2 = path 0 + path 1; path 3
/// independent of all.
PathSystem small_system() {
  std::vector<ProbePath> paths(4);
  paths[0].links = {0};
  paths[0].hops = 1;
  paths[1].links = {1};
  paths[1].hops = 1;
  paths[2].links = {0, 1};
  paths[2].hops = 2;
  paths[3].links = {2};
  paths[3].hops = 1;
  return PathSystem(3, paths);
}

TEST(Completion, ReconstructsDependentMeasurement) {
  const PathSystem sys = small_system();
  // Probe paths 0 and 1 with measurements 2.0 and 3.5.
  MeasurementCompleter completer(sys, {0, 1}, {2.0, 3.5});
  const auto m2 = completer.complete(2);
  ASSERT_TRUE(m2.has_value());
  EXPECT_NEAR(*m2, 5.5, 1e-9);  // Additivity: y2 = y0 + y1.
  // Path 3 covers link l2, unseen by probes: not reconstructible.
  EXPECT_FALSE(completer.complete(3).has_value());
  // Probed paths reconstruct to their own measurements.
  EXPECT_NEAR(*completer.complete(0), 2.0, 1e-9);
  EXPECT_NEAR(*completer.complete(1), 3.5, 1e-9);
}

TEST(Completion, CoverageAndCoveredPaths) {
  const PathSystem sys = small_system();
  MeasurementCompleter completer(sys, {0, 1}, {1.0, 1.0});
  EXPECT_EQ(completer.coverage(), 3u);
  EXPECT_EQ(completer.covered_paths(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Completion, RedundantProbesAreConsistent) {
  const PathSystem sys = small_system();
  // Probing path 2 as well adds no new information; reconstruction must
  // still be exact and prefer the independent subset's values.
  MeasurementCompleter completer(sys, {0, 1, 2}, {2.0, 3.5, 5.5});
  EXPECT_NEAR(*completer.complete(2), 5.5, 1e-9);
  EXPECT_EQ(completer.coverage(), 3u);
}

TEST(Completion, SizeMismatchThrows) {
  const PathSystem sys = small_system();
  EXPECT_THROW(MeasurementCompleter(sys, {0, 1}, {1.0}),
               std::invalid_argument);
}

TEST(Completion, MatchesSimulatedGroundTruth) {
  // On a realistic workload with additive delays: completing from a probed
  // basis reproduces every covered path's true e2e delay.
  const exp::Workload w = exp::make_custom_workload(40, 80, 80, 9);
  Rng rng(10);
  const GroundTruth truth = random_delays(w.graph.edge_count(), rng);
  // Probe a basis of the candidate set.
  const auto basis = linalg::independent_row_subset(w.system->matrix());
  failures::FailureVector none(w.graph.edge_count(), false);
  const auto meas =
      simulate_measurements(*w.system, basis, truth, none, 0.0, rng);
  MeasurementCompleter completer(*w.system, meas.rows, meas.values);
  // Every candidate path is covered by a full basis.
  EXPECT_EQ(completer.coverage(), w.system->path_count());
  for (std::size_t q = 0; q < w.system->path_count(); ++q) {
    double true_y = 0.0;
    for (graph::EdgeId l : w.system->path(q).links) {
      true_y += truth.link_metrics[l];
    }
    const auto y = completer.complete(q);
    ASSERT_TRUE(y.has_value()) << "path " << q;
    EXPECT_NEAR(*y, true_y, 1e-6) << "path " << q;
  }
}

TEST(Completion, CoverageUnderFailuresCountsSurvivingSpan) {
  const PathSystem sys = small_system();
  failures::FailureVector v(3, false);
  // No failures: probing {0,1,3} covers everything (rank 3).
  EXPECT_EQ(completion_coverage_under(sys, {0, 1, 3}, v), 4u);
  // l2 fails: path 3 is down; the rest still covered.
  v[2] = true;
  EXPECT_EQ(completion_coverage_under(sys, {0, 1, 3}, v), 3u);
  // l0 fails: paths 0 and 2 down; coverage = {1, 3}.
  v = {true, false, false};
  EXPECT_EQ(completion_coverage_under(sys, {0, 1, 3}, v), 2u);
}

TEST(Completion, RobustSelectionCoversMoreUnderFailures) {
  std::size_t rome_total = 0;
  std::size_t sp_total = 0;
  for (std::uint64_t seed = 30; seed < 33; ++seed) {
    const exp::Workload w = exp::make_custom_workload(40, 80, 80, seed, 8.0);
    std::vector<std::size_t> all(w.system->path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const double budget = 0.2 * w.costs.subset_cost(*w.system, all);
    core::ProbBoundEr engine(*w.system, *w.failures);
    const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
    Rng sp_rng(seed);
    const auto sp_sel =
        core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);
    Rng rng = w.eval_rng();
    for (int s = 0; s < 40; ++s) {
      const auto v = w.failures->sample(rng);
      rome_total += completion_coverage_under(*w.system, rome_sel.paths, v);
      sp_total += completion_coverage_under(*w.system, sp_sel.paths, v);
    }
  }
  EXPECT_GT(rome_total, sp_total);
}

}  // namespace
}  // namespace rnt::tomo
