// Tests for the LSR bandit and the epoch simulator: initialization phase
// coverage, estimate convergence, UCB behavior, the LLR matroid special
// case, regret accounting, and learning quality against the clairvoyant
// selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "graph/generators.h"
#include "learning/lsr.h"
#include "learning/simulator.h"
#include "tomo/monitors.h"
#include "util/rng.h"

namespace rnt::learning {
namespace {

struct World {
  graph::Graph graph{0};
  std::unique_ptr<tomo::PathSystem> system;
  std::unique_ptr<failures::FailureModel> model;
  tomo::CostModel costs = tomo::CostModel::unit();

  explicit World(std::uint64_t seed, std::size_t paths = 12,
                 double intensity = 4.0) {
    Rng rng(seed);
    graph = graph::ring_with_chords(10, 5, rng);
    system = std::make_unique<tomo::PathSystem>(
        tomo::build_path_system(graph, paths, rng));
    model = std::make_unique<failures::FailureModel>(
        failures::markopoulou_model(graph.edge_count(), rng, intensity));
    tomo::MonitorSet monitors;  // Unit costs keep tests simple by default.
  }
};

TEST(Lsr, ValidatesConfig) {
  World w(1);
  EXPECT_THROW(Lsr(*w.system, w.costs, LsrConfig{.budget = 0.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(Lsr(*w.system, w.costs, LsrConfig{.budget = 5.0}));
  EXPECT_NO_THROW(
      Lsr(*w.system, w.costs, LsrConfig{.budget = 0.0, .matroid_mode = true}));
}

TEST(Lsr, InitializationCoversEveryPath) {
  World w(2);
  Lsr learner(*w.system, w.costs, LsrConfig{.budget = 4.0});
  Rng rng(2);
  std::size_t guard = 0;
  while (learner.in_initialization() && guard++ < 100) {
    const auto action = learner.select_action();
    ASSERT_FALSE(action.empty());
    std::vector<bool> avail(action.size(), true);
    learner.observe(action, avail);
  }
  EXPECT_FALSE(learner.in_initialization());
  for (std::size_t c : learner.counts()) {
    EXPECT_GE(c, 1u);
  }
  // Budget 4 with unit costs: covering 12 paths takes ceil(12/4) epochs.
  EXPECT_EQ(learner.epoch(), 3u);
}

TEST(Lsr, ObserveValidatesSizes) {
  World w(3);
  Lsr learner(*w.system, w.costs, LsrConfig{.budget = 4.0});
  const auto action = learner.select_action();
  EXPECT_THROW(learner.observe(action, std::vector<bool>(action.size() + 1)),
               std::invalid_argument);
}

TEST(Lsr, ThetaHatTracksEmpiricalMean) {
  World w(4);
  Lsr learner(*w.system, w.costs, LsrConfig{.budget = 100.0});
  // Probe everything in one action (budget covers all 12 unit costs).
  const auto a1 = learner.select_action();
  EXPECT_EQ(a1.size(), w.system->path_count());
  std::vector<bool> up(a1.size(), true);
  learner.observe(a1, up);
  std::vector<bool> down(a1.size(), false);
  // After init, actions come from the optimizer; feed fixed observations
  // for whatever is probed.
  for (int i = 0; i < 3; ++i) {
    const auto a = learner.select_action();
    learner.observe(a, std::vector<bool>(a.size(), false));
  }
  for (std::size_t q = 0; q < w.system->path_count(); ++q) {
    const std::size_t n = learner.counts()[q];
    ASSERT_GE(n, 1u);
    // First observation was 1, all later ones 0 -> mean = 1/n.
    EXPECT_NEAR(learner.theta_hat()[q], 1.0 / static_cast<double>(n), 1e-12);
  }
}

TEST(Lsr, ActionSizeBoundReflectsBudget) {
  World w(5);
  Lsr a(*w.system, w.costs, LsrConfig{.budget = 3.0});
  EXPECT_EQ(a.action_size_bound(), 3u);
  Lsr b(*w.system, w.costs,
        LsrConfig{.budget = 0.0, .matroid_mode = true, .matroid_max_paths = 4});
  EXPECT_EQ(b.action_size_bound(), 4u);
  // Matroid mode with default cap: full candidate rank.
  Lsr c(*w.system, w.costs, LsrConfig{.budget = 0.0, .matroid_mode = true});
  EXPECT_EQ(c.action_size_bound(), w.system->full_rank());
}

TEST(Lsr, MatroidModeSelectsIndependentSets) {
  World w(6);
  Lsr learner(*w.system, w.costs,
              LsrConfig{.budget = 0.0, .matroid_mode = true});
  Rng rng(6);
  for (int epoch = 0; epoch < 8; ++epoch) {
    const auto action = learner.select_action();
    if (!learner.in_initialization()) {
      EXPECT_EQ(w.system->rank_of(action), action.size());
      EXPECT_LE(action.size(), w.system->full_rank());
    }
    const auto v = w.model->sample(rng);
    std::vector<bool> avail(action.size());
    for (std::size_t i = 0; i < action.size(); ++i) {
      avail[i] = w.system->path_survives(action[i], v);
    }
    learner.observe(action, avail);
  }
}

TEST(Lsr, UnexploredPathsGetFullOptimismBonus) {
  World w(7);
  Lsr learner(*w.system, w.costs, LsrConfig{.budget = 2.0});
  // After one init action of size 2, ten paths are unobserved; the next
  // actions must keep choosing unobserved paths (they carry bonus 1.0).
  std::vector<std::size_t> seen;
  std::size_t guard = 0;
  while (learner.in_initialization() && guard++ < 100) {
    const auto action = learner.select_action();
    for (std::size_t q : action) seen.push_back(q);
    learner.observe(action, std::vector<bool>(action.size(), true));
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(seen.size(), w.system->path_count());
}

// --------------------------------------------------------------------------
// Simulator
// --------------------------------------------------------------------------

TEST(Simulator, RecordsEveryEpoch) {
  World w(10);
  Lsr learner(*w.system, w.costs, LsrConfig{.budget = 5.0});
  Rng rng(10);
  const auto result = run_lsr(learner, *w.system, *w.model, 40, rng);
  ASSERT_EQ(result.records.size(), 40u);
  EXPECT_EQ(learner.epoch(), 40u);
  double total = 0.0;
  for (const auto& rec : result.records) {
    EXPECT_GE(rec.reward, 0.0);
    EXPECT_LE(rec.reward, static_cast<double>(rec.action_size));
    total += rec.reward;
  }
  EXPECT_NEAR(result.cumulative_reward, total, 1e-9);
}

TEST(Simulator, RegretCurveShape) {
  SimulationResult result;
  for (std::size_t i = 1; i <= 3; ++i) {
    EpochRecord rec;
    rec.epoch = i;
    rec.reward = 1.0;
    result.records.push_back(rec);
  }
  const auto curve = result.regret_curve(2.0);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0], 1.0);
  EXPECT_DOUBLE_EQ(curve[1], 2.0);
  EXPECT_DOUBLE_EQ(curve[2], 3.0);
}

TEST(Simulator, ExpectedRewardEstimatorBounds) {
  World w(11);
  Rng rng(11);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double est =
      estimate_expected_reward(*w.system, all, *w.model, 200, rng);
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, static_cast<double>(w.system->full_rank()));
  EXPECT_DOUBLE_EQ(
      estimate_expected_reward(*w.system, all, *w.model, 0, rng), 0.0);
}

TEST(Simulator, LearnedThetaApproachesTruth) {
  World w(12, 10, 6.0);
  Lsr learner(*w.system, w.costs, LsrConfig{.budget = 1e6});  // Probe all.
  Rng rng(12);
  run_lsr(learner, *w.system, *w.model, 600, rng);
  for (std::size_t q = 0; q < w.system->path_count(); ++q) {
    const double truth = w.system->expected_availability(q, *w.model);
    EXPECT_NEAR(learner.theta_hat()[q], truth, 0.12) << "path " << q;
  }
}

TEST(Simulator, FinalSelectionNearClairvoyant) {
  // After enough epochs, LSR's exploit selection should score close to the
  // clairvoyant RoMe selection under the true failure model (Fig. 10).
  World w(13, 12, 4.0);
  tomo::CostModel costs(1.0, {});
  Lsr learner(*w.system, costs, LsrConfig{.budget = 6.0});
  Rng rng(13);
  run_lsr(learner, *w.system, *w.model, 500, rng);
  const auto learned = learner.final_selection();
  EXPECT_LE(learned.cost, 6.0 + 1e-9);

  core::ProbBoundEr engine(*w.system, *w.model);
  const auto clairvoyant = core::rome(*w.system, costs, 6.0, engine);

  Rng eval_rng(14);
  const double learned_score = estimate_expected_reward(
      *w.system, learned.paths, *w.model, 1500, eval_rng);
  const double clair_score = estimate_expected_reward(
      *w.system, clairvoyant.paths, *w.model, 1500, eval_rng);
  EXPECT_GE(learned_score, 0.8 * clair_score);
}

TEST(Simulator, RewardNeverExceedsActionRank) {
  World w(15);
  Lsr learner(*w.system, w.costs, LsrConfig{.budget = 4.0});
  Rng rng(15);
  const auto result = run_lsr(learner, *w.system, *w.model, 30, rng);
  for (const auto& rec : result.records) {
    EXPECT_LE(rec.reward, static_cast<double>(w.system->full_rank()));
  }
}

}  // namespace
}  // namespace rnt::learning
