// Tests for the word-packed 0/1 rank kernel: packing round-trips, GF(2)
// rank against hand values, and exact_rank against the rational
// elimination oracle — including the matrices where GF(2) and rational
// rank genuinely differ.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "linalg/bitrank.h"
#include "linalg/elimination.h"
#include "linalg/matrix.h"
#include "linalg/rational.h"
#include "util/rng.h"

namespace rnt::linalg {
namespace {

BitRows pack(const Matrix& m) {
  BitRows rows(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) rows.append_dense(m.row(r));
  return rows;
}

Matrix random_binary(Rng& rng, std::size_t rows, std::size_t cols,
                     double density) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) m(r, c) = 1.0;
    }
  }
  return m;
}

TEST(BitRows, PackingRoundTrips) {
  // 70 columns straddles the word boundary.
  const std::size_t cols = 70;
  BitRows rows(cols);
  EXPECT_EQ(rows.words_per_row(), 2u);
  std::vector<double> dense(cols, 0.0);
  dense[0] = 1.0;
  dense[63] = 1.0;
  dense[64] = 1.0;
  dense[69] = 1.0;
  rows.append_dense(dense);
  const std::vector<std::uint32_t> idx = {69, 0, 64, 63};
  rows.append_indices(idx);
  std::vector<bool> flags(cols, false);
  flags[0] = flags[63] = flags[64] = flags[69] = true;
  rows.append_flags(flags);
  rows.append_words(rows.row(0));
  ASSERT_EQ(rows.rows(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(rows.bit(r, c), c == 0 || c == 63 || c == 64 || c == 69)
          << "row " << r << " col " << c;
    }
  }
}

TEST(BitRows, RejectsBadWidths) {
  BitRows rows(8);
  EXPECT_THROW(rows.append_dense(std::vector<double>(9, 0.0)),
               std::invalid_argument);
  const std::vector<std::uint32_t> oob = {8};
  EXPECT_THROW(rows.append_indices(oob), std::invalid_argument);
  EXPECT_THROW(rows.append_flags(std::vector<bool>(7, false)),
               std::invalid_argument);
}

TEST(Gf2Rank, HandValues) {
  // Identity-ish and duplicated rows.
  Matrix a{{1, 0, 0}, {0, 1, 0}, {1, 1, 0}, {1, 1, 0}};
  EXPECT_EQ(gf2_rank(pack(a)), 2u);  // Third row = first ^ second.
  Matrix full{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  EXPECT_EQ(gf2_rank(pack(full)), 3u);
  EXPECT_EQ(gf2_rank(BitRows(5)), 0u);
}

TEST(Gf2Rank, TriangleMatrixDropsRank) {
  // The canonical GF(2) != rational example: {a,b}, {b,c}, {a,c} has
  // rational rank 3 but the rows XOR to zero over GF(2).
  Matrix tri{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}};
  EXPECT_EQ(gf2_rank(pack(tri)), 2u);
  EXPECT_EQ(rank(tri), 3u);
  EXPECT_EQ(linalg::exact_rank(pack(tri)), 3u);  // The mod-p path fixes it.
}

TEST(Gf2Basis, IncrementalMatchesBatch) {
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cols = 1 + rng.index(100);
    const std::size_t n = 1 + rng.index(12);
    const Matrix m = random_binary(rng, n, cols, 0.35);
    const BitRows packed = pack(m);
    Gf2Basis basis(cols);
    std::size_t added = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const bool indep = basis.is_independent(packed.row(r));
      EXPECT_EQ(basis.try_add(packed.row(r)), indep);
      if (indep) ++added;
      // A just-added row is dependent on the basis.
      EXPECT_FALSE(basis.is_independent(packed.row(r)));
    }
    EXPECT_EQ(basis.rank(), added);
    EXPECT_EQ(basis.rank(), gf2_rank(packed));
  }
}

TEST(ExactRank, MatchesRationalOracleOnRandomMatrices) {
  Rng rng(77);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t rows = 1 + rng.index(12);
    const std::size_t cols = 1 + rng.index(14);
    const double density = 0.15 + 0.7 * rng.uniform(0, 1);
    const Matrix m = random_binary(rng, rows, cols, density);
    const std::size_t expected = exact_rank(m);  // Rational elimination.
    EXPECT_EQ(linalg::exact_rank(pack(m)), expected)
        << "trial " << trial << " (" << rows << "x" << cols << ")";
  }
}

TEST(ExactRank, ZeroAndDuplicateRows) {
  Matrix m{{0, 0, 0, 0}, {1, 0, 1, 0}, {1, 0, 1, 0}, {0, 0, 0, 0}};
  EXPECT_EQ(linalg::exact_rank(pack(m)), 1u);
  EXPECT_EQ(linalg::exact_rank(BitRows(0)), 0u);
}

TEST(ExactRankMasked, SelectsRowsByBit) {
  Matrix m{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}};
  const BitRows packed = pack(m);
  // All rows: rank 3 (rows span R^3; the triangle needs the mod-p path).
  std::vector<std::uint64_t> all = {0b1111};
  EXPECT_EQ(exact_rank_masked(packed, all), 3u);
  std::vector<std::uint64_t> two = {0b0011};
  EXPECT_EQ(exact_rank_masked(packed, two), 2u);
  std::vector<std::uint64_t> none = {0};
  EXPECT_EQ(exact_rank_masked(packed, none), 0u);
}

TEST(ExactRank, WideMatrixCrossesWordBoundaries) {
  Rng rng(5);
  const std::size_t cols = 200;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t rows = 1 + rng.index(20);
    const Matrix m = random_binary(rng, rows, cols, 0.1);
    EXPECT_EQ(linalg::exact_rank(pack(m)), rank(m));
  }
}

}  // namespace
}  // namespace rnt::linalg
