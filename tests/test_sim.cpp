// Tests for the discrete-event probing simulator: event queue ordering,
// probe-level epoch semantics (RTT = sum of link delays, loss at failed
// links, timeout accounting), and the multi-epoch monitoring session.
#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "exp/workload.h"
#include "learning/lsr.h"
#include "sim/event_queue.h"
#include "sim/monitoring_session.h"
#include "sim/probe_engine.h"

namespace rnt::sim {
namespace {

// --------------------------------------------------------------------------
// EventQueue
// --------------------------------------------------------------------------

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5.0, [&] { order.push_back(1); });
  q.schedule(5.0, [&] { order.push_back(2); });
  q.schedule(5.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ActionsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(10.0, [&] { ++fired; });
  EXPECT_EQ(q.run(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
}

// --------------------------------------------------------------------------
// ProbeEngine
// --------------------------------------------------------------------------

/// Paths (l0), (l0,l1), (l0,l1,l2) over 3 links.
tomo::PathSystem line_system() {
  std::vector<tomo::ProbePath> paths(3);
  paths[0].links = {0};
  paths[0].hops = 1;
  paths[1].links = {0, 1};
  paths[1].hops = 2;
  paths[2].links = {0, 1, 2};
  paths[2].hops = 3;
  return tomo::PathSystem(3, paths);
}

TEST(ProbeEngine, RttIsSumOfLinkDelaysPlusProcessing) {
  const tomo::PathSystem sys = line_system();
  tomo::GroundTruth truth;
  truth.link_metrics = {2.0, 3.0, 4.0};
  ProbeEngineConfig cfg;
  cfg.per_hop_processing_ms = 0.5;
  cfg.jitter_std_ms = 0.0;
  ProbeEngine engine(sys, truth, cfg);
  Rng rng(1);
  failures::FailureVector none(3, false);
  const auto trace = engine.run_epoch({0, 1, 2}, none, rng);
  ASSERT_EQ(trace.outcomes.size(), 3u);
  EXPECT_TRUE(trace.outcomes[0].delivered);
  EXPECT_NEAR(trace.outcomes[0].rtt_ms, 2.5, 1e-12);
  EXPECT_NEAR(trace.outcomes[1].rtt_ms, 6.0, 1e-12);
  EXPECT_NEAR(trace.outcomes[2].rtt_ms, 10.5, 1e-12);
  // NOC receives after access delay; epoch completes at the last report.
  EXPECT_NEAR(trace.outcomes[2].reported_at_ms, 10.5 + 5.0, 1e-12);
  EXPECT_NEAR(trace.completed_at_ms, 15.5, 1e-12);
}

TEST(ProbeEngine, ProbeDiesAtFailedLink) {
  const tomo::PathSystem sys = line_system();
  tomo::GroundTruth truth;
  truth.link_metrics = {2.0, 3.0, 4.0};
  ProbeEngine engine(sys, truth);
  Rng rng(2);
  failures::FailureVector v = {false, true, false};  // l1 down
  const auto trace = engine.run_epoch({0, 1, 2}, v, rng);
  EXPECT_TRUE(trace.outcomes[0].delivered);
  EXPECT_FALSE(trace.outcomes[1].delivered);
  EXPECT_FALSE(trace.outcomes[2].delivered);
  // Loss detected at the timeout: epoch can't complete before it.
  EXPECT_GE(trace.completed_at_ms, 1000.0);
}

TEST(ProbeEngine, TimeoutDropsSlowProbes) {
  const tomo::PathSystem sys = line_system();
  tomo::GroundTruth truth;
  truth.link_metrics = {600.0, 600.0, 600.0};  // Path 1 takes 1200+ ms.
  ProbeEngineConfig cfg;
  cfg.timeout_ms = 1000.0;
  ProbeEngine engine(sys, truth, cfg);
  Rng rng(3);
  failures::FailureVector none(3, false);
  const auto trace = engine.run_epoch({0, 1}, none, rng);
  EXPECT_TRUE(trace.outcomes[0].delivered);   // ~600 ms < timeout
  EXPECT_FALSE(trace.outcomes[1].delivered);  // ~1200 ms > timeout
}

TEST(ProbeEngine, MeasurementsFeedEstimationExactly) {
  const tomo::PathSystem sys = line_system();
  tomo::GroundTruth truth;
  truth.link_metrics = {2.0, 3.0, 4.0};
  ProbeEngineConfig cfg;
  cfg.per_hop_processing_ms = 0.0;  // Pure link delays.
  ProbeEngine engine(sys, truth, cfg);
  Rng rng(4);
  failures::FailureVector none(3, false);
  const auto trace = engine.run_epoch({0, 1, 2}, none, rng);
  const auto measurements = trace.measurements();
  const auto estimate = tomo::estimate_link_metrics(sys, measurements, truth);
  ASSERT_EQ(estimate.identifiable.size(), 3u);
  EXPECT_NEAR(estimate.mean_abs_error, 0.0, 1e-9);
}

TEST(ProbeEngine, WireAccounting) {
  const tomo::PathSystem sys = line_system();
  tomo::GroundTruth truth;
  truth.link_metrics = {1.0, 1.0, 1.0};
  ProbeEngineConfig cfg;
  cfg.probe_bytes = 100;
  cfg.report_bytes = 200;
  ProbeEngine engine(sys, truth, cfg);
  Rng rng(5);
  failures::FailureVector v = {false, false, true};  // Path 2 lost.
  const auto trace = engine.run_epoch({0, 1, 2}, v, rng);
  // 3 probes sent, 2 delivered (reports): 3*100 + 2*200.
  EXPECT_EQ(trace.bytes_on_wire, 700u);
}

TEST(ProbeEngine, AvailabilityVectorAlignsWithSubset) {
  const tomo::PathSystem sys = line_system();
  tomo::GroundTruth truth;
  truth.link_metrics = {1.0, 1.0, 1.0};
  ProbeEngine engine(sys, truth);
  Rng rng(6);
  failures::FailureVector v = {false, true, false};
  const std::vector<std::size_t> subset = {2, 0};
  const auto trace = engine.run_epoch(subset, v, rng);
  const auto avail = trace.availability(subset);
  ASSERT_EQ(avail.size(), 2u);
  EXPECT_FALSE(avail[0]);  // Path 2 crosses l1.
  EXPECT_TRUE(avail[1]);   // Path 0 does not.
}

TEST(ProbeEngine, ValidatesInput) {
  const tomo::PathSystem sys = line_system();
  tomo::GroundTruth bad;
  bad.link_metrics = {1.0};
  EXPECT_THROW(ProbeEngine(sys, bad), std::invalid_argument);
  tomo::GroundTruth ok;
  ok.link_metrics = {1.0, 1.0, 1.0};
  ProbeEngineConfig cfg;
  cfg.timeout_ms = 0.0;
  EXPECT_THROW(ProbeEngine(sys, ok, cfg), std::invalid_argument);
  ProbeEngine engine(sys, ok);
  Rng rng(7);
  EXPECT_THROW(engine.run_epoch({0}, failures::FailureVector{true}, rng),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// MonitoringSession
// --------------------------------------------------------------------------

TEST(MonitoringSession, FixedSelectionAccounting) {
  const exp::Workload w = exp::make_custom_workload(30, 60, 40, 31, 5.0);
  Rng truth_rng(32);
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), truth_rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});

  // Zero per-hop processing so probe RTTs equal the additive link delays
  // exactly and estimation is unbiased.
  ProbeEngineConfig cfg;
  cfg.per_hop_processing_ms = 0.0;
  MonitoringSession session(*w.system, truth, *w.failures, all, cfg);
  Rng rng(33);
  session.run(25, rng);
  const SessionReport& report = session.report();
  ASSERT_EQ(report.epochs.size(), 25u);
  EXPECT_EQ(session.epochs_run(), 25u);
  for (const SessionEpoch& e : report.epochs) {
    EXPECT_EQ(e.probed, all.size());
    EXPECT_LE(e.delivered, e.probed);
    EXPECT_LE(e.surviving_rank, static_cast<double>(w.system->full_rank()));
    EXPECT_LE(e.links_estimated, w.graph.edge_count());
  }
  EXPECT_GT(report.total_bytes, 0u);
  EXPECT_GT(report.delivery_rate.mean(), 0.3);
  EXPECT_LE(report.delivery_rate.max(), 1.0);
  // Noiseless probes: estimation on identifiable links is exact.
  EXPECT_NEAR(report.estimation_error.mean(), 0.0, 1e-6);
}

TEST(MonitoringSession, CumulativeAcrossRuns) {
  const exp::Workload w = exp::make_custom_workload(30, 60, 30, 34, 3.0);
  Rng truth_rng(35);
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), truth_rng);
  MonitoringSession session(*w.system, truth, *w.failures, {0, 1, 2});
  Rng rng(36);
  session.run(5, rng);
  session.run(7, rng);
  EXPECT_EQ(session.epochs_run(), 12u);
  EXPECT_EQ(session.report().epochs.back().epoch, 12u);
}

TEST(MonitoringSession, LearnerDrivenSessionFeedsObservations) {
  const exp::Workload w = exp::make_custom_workload(30, 60, 30, 37, 5.0);
  Rng truth_rng(38);
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), truth_rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = 0.4 * w.costs.subset_cost(*w.system, all);

  learning::Lsr learner(*w.system, w.costs,
                        learning::LsrConfig{.budget = budget});
  MonitoringSession session(*w.system, truth, *w.failures, learner);
  Rng rng(39);
  session.run(40, rng);
  EXPECT_EQ(learner.epoch(), 40u);
  EXPECT_FALSE(learner.in_initialization());
  // The learner has estimates for every path it probed.
  for (std::size_t c : learner.counts()) {
    EXPECT_GE(c, 0u);
  }
}

}  // namespace
}  // namespace rnt::sim
