// Tests for the column-pivoted Householder QR: rank agreement with
// elimination and exact rationals, factor structure, and the QR-based row
// basis selection.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/elimination.h"
#include "linalg/qr.h"
#include "linalg/rational.h"
#include "util/rng.h"

namespace rnt::linalg {
namespace {

Matrix random_binary_matrix(std::size_t rows, std::size_t cols, double density,
                            Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    bool any = false;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        m(r, c) = 1.0;
        any = true;
      }
    }
    if (!any) m(r, rng.index(cols)) = 1.0;
  }
  return m;
}

TEST(Qr, RankOfIdentityAndZero) {
  EXPECT_EQ(qr_rank(Matrix::identity(7)), 7u);
  EXPECT_EQ(qr_rank(Matrix(4, 5)), 0u);
  EXPECT_EQ(qr_rank(Matrix()), 0u);
}

TEST(Qr, RankMatchesEliminationOnRandomBinary) {
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rows = 2 + rng.index(12);
    const std::size_t cols = 2 + rng.index(12);
    Matrix m = random_binary_matrix(rows, cols, 0.35, rng);
    EXPECT_EQ(qr_rank(m), exact_rank(m)) << "trial " << trial;
  }
}

TEST(Qr, DiagIsNonIncreasing) {
  // Column pivoting guarantees |R_kk| are (weakly) decreasing — the
  // rank-revealing property.
  Rng rng(102);
  Matrix m = random_binary_matrix(15, 10, 0.4, rng);
  const PivotedQr qr = qr_column_pivoted(m);
  for (std::size_t k = 1; k < qr.diag.size(); ++k) {
    EXPECT_LE(qr.diag[k], qr.diag[k - 1] + 1e-9);
  }
}

TEST(Qr, PermutationIsValid) {
  Rng rng(103);
  Matrix m = random_binary_matrix(8, 6, 0.4, rng);
  const PivotedQr qr = qr_column_pivoted(m);
  std::vector<bool> seen(m.cols(), false);
  for (std::size_t p : qr.permutation) {
    ASSERT_LT(p, m.cols());
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Qr, PreservesColumnNorms) {
  // Householder reflections are orthogonal: each permuted column of A has
  // the same 2-norm as the corresponding column of R.
  Rng rng(104);
  Matrix m = random_binary_matrix(10, 6, 0.5, rng);
  const PivotedQr qr = qr_column_pivoted(m);
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double a_norm = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      a_norm += m(r, qr.permutation[c]) * m(r, qr.permutation[c]);
    }
    double r_norm = 0.0;
    for (std::size_t r = 0; r < qr.r.rows(); ++r) {
      r_norm += qr.r(r, c) * qr.r(r, c);
    }
    EXPECT_NEAR(std::sqrt(a_norm), std::sqrt(r_norm), 1e-8);
  }
}

TEST(Qr, RowBasisHasFullRank) {
  Rng rng(105);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m = random_binary_matrix(12, 8, 0.35, rng);
    const auto basis = qr_row_basis(m);
    EXPECT_EQ(basis.size(), rank(m));
    EXPECT_EQ(rank_of_rows(m, basis), basis.size());
  }
}

TEST(Qr, RowBasisOrdersByContribution) {
  // The first selected row must be one with the largest norm (most links).
  Matrix m{{1, 0, 0, 0}, {1, 1, 1, 1}, {0, 1, 0, 0}};
  const auto basis = qr_row_basis(m);
  ASSERT_FALSE(basis.empty());
  EXPECT_EQ(basis[0], 1u);  // The 4-link row.
}

TEST(Qr, HandlesWideAndTallMatrices) {
  Rng rng(106);
  Matrix tall = random_binary_matrix(20, 5, 0.4, rng);
  EXPECT_EQ(qr_rank(tall), rank(tall));
  Matrix wide = random_binary_matrix(5, 20, 0.4, rng);
  EXPECT_EQ(qr_rank(wide), rank(wide));
}

}  // namespace
}  // namespace rnt::linalg
