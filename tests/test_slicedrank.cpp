// Tests for the scenario-sliced rank kernel: sliced_ranks against the
// per-instance exact_rank_masked oracle at word-boundary instance counts,
// lane-width and fallback-tier parity, the GF(3) bit-plane add formula
// over all nine digit pairs, degenerate instances (nothing survives), and
// the engine-level contracts (duplicate-scenario dedup, per-kernel rank
// memo isolation).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "core/expected_rank.h"
#include "core/kernel_er.h"
#include "exp/workload.h"
#include "linalg/bitrank.h"
#include "linalg/slicedrank.h"
#include "util/rng.h"

namespace rnt::linalg {
namespace {

/// Random 0/1 rows plus a random alive mask per (row, instance).
struct SlicedCase {
  BitRows rows{0};
  std::vector<std::uint64_t> alive;
  std::size_t instances = 0;
  std::size_t stride = 0;
};

SlicedCase random_case(Rng& rng, std::size_t n_rows, std::size_t cols,
                       std::size_t instances, double row_density,
                       double alive_density) {
  SlicedCase c;
  c.rows = BitRows(cols);
  c.instances = instances;
  c.stride = (instances + 63) / 64;
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<bool> flags(cols, false);
    for (std::size_t l = 0; l < cols; ++l) {
      if (rng.bernoulli(row_density)) flags[l] = true;
    }
    c.rows.append_flags(flags);
  }
  c.alive.assign(n_rows * c.stride, 0);
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t s = 0; s < instances; ++s) {
      if (rng.bernoulli(alive_density)) {
        c.alive[r * c.stride + s / 64] |= std::uint64_t{1} << (s % 64);
      }
    }
  }
  return c;
}

/// Per-instance oracle: exact_rank_masked over the rows alive in s.
std::vector<std::size_t> oracle_ranks(const SlicedCase& c) {
  std::vector<std::size_t> out(c.instances, 0);
  const std::size_t keep_words = (c.rows.rows() + 63) / 64;
  for (std::size_t s = 0; s < c.instances; ++s) {
    std::vector<std::uint64_t> keep(keep_words == 0 ? 1 : keep_words, 0);
    for (std::size_t r = 0; r < c.rows.rows(); ++r) {
      if ((c.alive[r * c.stride + s / 64] >> (s % 64)) & 1u) {
        keep[r / 64] |= std::uint64_t{1} << (r % 64);
      }
    }
    out[s] = exact_rank_masked(c.rows, keep);
  }
  return out;
}

// Instance counts straddling the 64-lane word boundaries: 1, 63, 64, 65,
// 127, 128 — a lone lane, a full word minus one, exactly one word, one
// word plus a tail, and the same around the second word.
TEST(SlicedRanks, MatchesOracleAcrossWordBoundaries) {
  Rng rng(2024);
  for (const std::size_t instances : {1u, 63u, 64u, 65u, 127u, 128u}) {
    for (int rep = 0; rep < 3; ++rep) {
      const SlicedCase c =
          random_case(rng, 24, 40, instances, 0.2, 0.7);
      const auto expected = oracle_ranks(c);
      const auto exact = sliced_ranks(c.rows, c.alive, c.instances,
                                      SliceLane::kAuto,
                                      SlicedFallback::kExact);
      const auto flt = sliced_ranks(c.rows, c.alive, c.instances,
                                    SliceLane::kAuto,
                                    SlicedFallback::kFloat);
      ASSERT_EQ(exact.size(), instances);
      for (std::size_t s = 0; s < instances; ++s) {
        EXPECT_EQ(exact[s], expected[s])
            << instances << " instances, rep " << rep << ", instance " << s;
        EXPECT_EQ(flt[s], expected[s])
            << "float tier, " << instances << " instances, instance " << s;
      }
    }
  }
}

// All lane widths compute identical bits; unsupported explicit requests
// fall back to a supported width, so every enum value is safe to force.
TEST(SlicedRanks, ForcedScalarMatchesWidestLane) {
  Rng rng(7);
  const SlicedCase c = random_case(rng, 48, 96, 128, 0.15, 0.6);
  const auto widest = sliced_ranks(c.rows, c.alive, c.instances,
                                   SliceLane::kAuto);
  for (const SliceLane lane :
       {SliceLane::kScalar64, SliceLane::kSimd256, SliceLane::kSimd512}) {
    const auto forced = sliced_ranks(c.rows, c.alive, c.instances, lane);
    EXPECT_EQ(forced, widest) << slice_lane_name(resolve_slice_lane(lane));
  }
}

// An instance in which no row survives (all links failed) must rank 0
// without disturbing its neighbours; a row alive nowhere costs nothing.
TEST(SlicedRanks, NothingSurvivingRanksZero) {
  Rng rng(11);
  SlicedCase c = random_case(rng, 16, 30, 65, 0.25, 0.8);
  // Kill instance 0 (first word) and instance 64 (the one-lane tail).
  for (std::size_t r = 0; r < c.rows.rows(); ++r) {
    c.alive[r * c.stride + 0] &= ~std::uint64_t{1};
    c.alive[r * c.stride + 1] = 0;
  }
  const auto expected = oracle_ranks(c);
  EXPECT_EQ(expected[0], 0u);
  EXPECT_EQ(expected[64], 0u);
  for (const SlicedFallback tier :
       {SlicedFallback::kExact, SlicedFallback::kFloat}) {
    const auto got = sliced_ranks(c.rows, c.alive, c.instances,
                                  SliceLane::kAuto, tier);
    EXPECT_EQ(got, expected);
  }

  // And the fully degenerate corners: no rows at all, zero instances.
  const BitRows empty(30);
  const std::vector<std::uint64_t> no_alive(1, 0);
  EXPECT_TRUE(sliced_ranks(empty, no_alive, 0).empty());
  const auto lone = sliced_ranks(empty, no_alive, 1);
  ASSERT_EQ(lone.size(), 1u);
  EXPECT_EQ(lone[0], 0u);
}

// Instances with identical alive columns are the duplicate-scenario case
// the engine dedups; the standalone driver must give them identical
// ranks through its history-grouping (they never split apart).
TEST(SlicedRanks, DuplicateInstancesAgree) {
  Rng rng(13);
  SlicedCase c = random_case(rng, 20, 36, 66, 0.2, 0.65);
  // Copy instance 3's column into 5, 40 and 65 (crossing the word
  // boundary so a duplicate pair spans two slices of one word each).
  for (std::size_t r = 0; r < c.rows.rows(); ++r) {
    const bool bit =
        (c.alive[r * c.stride + 0] >> 3) & 1u;
    auto set = [&](std::size_t s, bool on) {
      std::uint64_t& w = c.alive[r * c.stride + s / 64];
      const std::uint64_t m = std::uint64_t{1} << (s % 64);
      w = on ? (w | m) : (w & ~m);
    };
    set(5, bit);
    set(40, bit);
    set(65, bit);
  }
  const auto got = sliced_ranks(c.rows, c.alive, c.instances);
  EXPECT_EQ(got[5], got[3]);
  EXPECT_EQ(got[40], got[3]);
  EXPECT_EQ(got[65], got[3]);
  EXPECT_EQ(got, oracle_ranks(c));
}

// The GF(3) two-plane add formula used by every gf3_step lane body:
//   zl = (a & ~(c|d)) | (c & ~(a|b)) | (b & d)
//   zh = (b & ~(c|d)) | (d & ~(a|b)) | (a & c)
// brute-forced over all nine digit pairs in the (lo, hi) encoding
// 0 -> (0,0), 1 -> (1,0), 2 -> (0,1).
TEST(SlicedRanks, Gf3AddFormulaExhaustive) {
  auto lo_of = [](int v) -> std::uint64_t { return v == 1 ? 1 : 0; };
  auto hi_of = [](int v) -> std::uint64_t { return v == 2 ? 1 : 0; };
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      const std::uint64_t a = lo_of(x), b = hi_of(x);
      const std::uint64_t c = lo_of(y), d = hi_of(y);
      const std::uint64_t zl = (a & ~(c | d)) | (c & ~(a | b)) | (b & d);
      const std::uint64_t zh = (b & ~(c | d)) | (d & ~(a | b)) | (a & c);
      const int z = (x + y) % 3;
      EXPECT_EQ(zl, lo_of(z)) << x << " + " << y;
      EXPECT_EQ(zh, hi_of(z)) << x << " + " << y;
    }
  }
}

}  // namespace
}  // namespace rnt::linalg

namespace rnt {
namespace {

// ---------------------------------------------------------------------------
// Engine-level contracts for the sliced kernel.
// ---------------------------------------------------------------------------

struct Engines {
  exp::Workload workload;
  std::unique_ptr<core::MonteCarloEr> scenario;
  std::unique_ptr<core::KernelErEngine> engine;
};

Engines make_engines(std::size_t runs, std::uint64_t seed) {
  Engines e;
  e.workload = exp::make_custom_workload(40, 80, 40, seed, 5.0);
  Rng rng(seed * 31 + 7);
  e.scenario = std::make_unique<core::MonteCarloEr>(
      *e.workload.system, *e.workload.failures, runs, rng);
  e.engine = std::make_unique<core::KernelErEngine>(
      *e.workload.system, e.scenario->scenarios(), e.scenario->weights(),
      e.scenario->name());
  return e;
}

std::vector<std::size_t> all_paths(const Engines& e) {
  std::vector<std::size_t> all(e.workload.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return all;
}

// Sliced and scalar kernels fill disjoint cross-call rank memos: warming
// one must leave the other empty, so switching kernels can never replay
// a rank cached under different arithmetic.
TEST(SlicedKernel, RankMemoIsolatedPerKernel) {
  Engines e = make_engines(64, 5);
  const std::vector<std::size_t> subset = all_paths(e);

  e.engine->set_kernel_mode(core::KernelMode::kSliced);
  const double sliced_er = e.engine->evaluate(subset);
  EXPECT_GT(e.engine->rank_memo_entries(core::KernelMode::kSliced), 0u);
  EXPECT_EQ(e.engine->rank_memo_entries(core::KernelMode::kScalar), 0u);

  e.engine->set_kernel_mode(core::KernelMode::kScalar);
  const double scalar_er = e.engine->evaluate(subset);
  EXPECT_GT(e.engine->rank_memo_entries(core::KernelMode::kScalar), 0u);
  EXPECT_EQ(sliced_er, scalar_er);

  // Warm memos from one kernel never change the other's answers: flip
  // back and the sliced result is still bitwise identical.
  e.engine->set_kernel_mode(core::KernelMode::kSliced);
  EXPECT_EQ(e.engine->evaluate(subset), sliced_er);
}

// A scenario list with duplicates dedups into classes; the sliced kernel
// must produce the same ER as the scalar kernel and the same weighted
// rank sum as per-scenario elimination, duplicates and all.
TEST(SlicedKernel, DuplicateScenariosDedupBitwise) {
  Engines e = make_engines(48, 9);
  // Duplicate every third scenario (with its weight) into a longer list.
  std::vector<failures::FailureVector> scenarios = e.scenario->scenarios();
  std::vector<double> weights = e.scenario->weights();
  const std::size_t base = scenarios.size();
  for (std::size_t s = 0; s < base; s += 3) {
    scenarios.push_back(scenarios[s]);
    weights.push_back(weights[s]);
  }
  core::KernelErEngine dup(*e.workload.system, scenarios, weights, "dup");

  const std::vector<std::size_t> subset = all_paths(e);
  dup.set_kernel_mode(core::KernelMode::kSliced);
  const double sliced_er = dup.evaluate(subset);
  dup.set_kernel_mode(core::KernelMode::kScalar);
  EXPECT_EQ(dup.evaluate(subset), sliced_er);

  // Dedup means the class structure is smaller than the scenario list.
  EXPECT_LT(dup.scenario_classes().count(), scenarios.size());

  // Per-scenario ranks are still reported per *scenario*, not per class.
  dup.set_kernel_mode(core::KernelMode::kSliced);
  const auto ranks = dup.scenario_ranks(subset);
  ASSERT_EQ(ranks.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size() - base; ++i) {
    EXPECT_EQ(ranks[base + i], ranks[i * 3]) << "duplicate scenario " << i;
  }
}

// The accumulator under the sliced kernel is bitwise the scalar one over
// a full greedy trajectory, including after the per-class saturation
// certificate starts masking lanes out.
TEST(SlicedKernel, AccumulatorBitwiseScalarTrajectory) {
  Engines e = make_engines(96, 17);
  e.engine->set_kernel_mode(core::KernelMode::kSliced);
  core::KernelErEngine scalar(*e.workload.system, e.scenario->scenarios(),
                              e.scenario->weights(), e.scenario->name());
  scalar.set_kernel_mode(core::KernelMode::kScalar);

  auto sliced_acc = e.engine->make_accumulator();
  auto scalar_acc = scalar.make_accumulator();
  Rng rng(99);
  std::vector<std::size_t> order = all_paths(e);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.index(i)]);
  }
  for (const std::size_t path : order) {
    for (std::size_t q = 0; q < order.size(); ++q) {
      ASSERT_EQ(sliced_acc->gain(q), scalar_acc->gain(q))
          << "gain(" << q << ") after " << path;
    }
    sliced_acc->add(path);
    scalar_acc->add(path);
    ASSERT_EQ(sliced_acc->value(), scalar_acc->value());
  }
  // The full set's value tracks evaluate() (the accumulator sums class
  // weights incrementally; evaluate() reduces per-scenario ranks in
  // fixed-size chunks, so agreement is within float tolerance, and the
  // bitwise contract above is sliced == scalar, not accumulator ==
  // evaluate).
  EXPECT_NEAR(sliced_acc->value(), e.engine->evaluate(order), 1e-9);
}

}  // namespace
}  // namespace rnt
