// service::ThreadPool — the execution substrate of the tomography service.
//
// The contract under test: futures deliver results and exceptions, shutdown
// drains every accepted task before joining (drain-and-join), and submit
// after shutdown is refused rather than silently dropped.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "service/thread_pool.h"

namespace rnt::service {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManySmallTasksAllComplete) {
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::atomic<int> ran{0};
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(sum, static_cast<long long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, TasksRunConcurrently) {
  // Two tasks that each wait for the other to start can only finish when
  // two workers genuinely run in parallel.
  ThreadPool pool(2);
  std::promise<void> first_started;
  std::promise<void> second_started;
  auto a = pool.submit([&] {
    first_started.set_value();
    second_started.get_future().wait();
    return 1;
  });
  auto b = pool.submit([&] {
    second_started.set_value();
    first_started.get_future().wait();
    return 2;
  });
  EXPECT_EQ(a.get() + b.get(), 3);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task exploded"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task exploded");
          throw;
        }
      },
      std::runtime_error);
  // The worker survives the throwing task.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  // One worker, blocked on a gate while 100 tasks pile up behind it;
  // shutdown() must still run every queued task before joining.
  ThreadPool pool(1);
  std::promise<void> gate;
  auto blocker = pool.submit([f = gate.get_future().share()] { f.wait(); });
  constexpr int kQueued = 100;
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < kQueued; ++i) {
    futures.push_back(
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  EXPECT_GE(pool.pending(), static_cast<std::size_t>(kQueued) - 1);
  gate.set_value();
  pool.shutdown();
  EXPECT_EQ(ran.load(), kQueued);
  blocker.get();
  for (auto& f : futures) f.get();  // Every accepted future is fulfilled.
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 0; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 3; });
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(f.get(), 3);
}

TEST(ThreadPool, DestructorDrains) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool: drain-and-join.
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace rnt::service
