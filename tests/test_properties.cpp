// Parameterized cross-topology property sweeps: the paper's qualitative
// claims checked across all three calibrated topologies and several failure
// intensities.  These are the "does the headline hold everywhere" tests —
// each asserts an ordering or invariant with generous statistical margins.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/expected_rank.h"
#include "core/matrome.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "exp/metrics.h"
#include "exp/workload.h"
#include "linalg/cholesky.h"
#include "linalg/elimination.h"
#include "linalg/svd.h"
#include "testkit/checks.h"
#include "testkit/instance.h"

namespace rnt {
namespace {

using Param = std::tuple<graph::IspTopology, double>;  // topology, intensity

class CrossTopology : public ::testing::TestWithParam<Param> {
 protected:
  exp::Workload make(std::size_t paths, std::uint64_t seed = 7) const {
    exp::WorkloadSpec spec;
    spec.topology = std::get<0>(GetParam());
    spec.candidate_paths = paths;
    spec.failure_intensity = std::get<1>(GetParam());
    spec.seed = seed;
    return exp::make_workload(spec);
  }
};

TEST_P(CrossTopology, WorkloadSane) {
  const exp::Workload w = make(150);
  EXPECT_TRUE(w.graph.is_connected());
  EXPECT_EQ(w.system->path_count(), 150u);
  EXPECT_GT(w.system->full_rank(), 0u);
  EXPECT_LE(w.system->full_rank(),
            std::min<std::size_t>(150, w.graph.edge_count()));
  EXPECT_GT(w.failures->expected_failures(), 0.0);
}

TEST_P(CrossTopology, RankOraclesAgree) {
  // The testkit check referees every production rank path (elimination,
  // QR, sparse, incremental basis, row-subset selectors) against its own
  // self-contained naive elimination, on the full system and on a seeded
  // random subset.  SVD is not part of the harness check, so it keeps an
  // explicit assertion here.
  const exp::Workload w = make(120);
  const testkit::TestInstance inst = testkit::from_workload(w, 7);
  const testkit::CheckResult r = testkit::run_check(
      *testkit::find_check("rank-oracles-agree"), inst);
  EXPECT_TRUE(r.passed) << r.message;
  const auto& m = w.system->matrix();
  EXPECT_EQ(linalg::svd_rank(m), linalg::rank(m));
}

TEST_P(CrossTopology, BasisSelectorsAgreeOnRank) {
  // Selector sizes are covered by the harness's incremental-basis check
  // (which additionally verifies the dependent-row reductions Eq. 6
  // consumes); the Cholesky selector is not, so it stays explicit.
  const exp::Workload w = make(120);
  const testkit::TestInstance inst = testkit::from_workload(w, 11);
  const testkit::CheckResult r = testkit::run_check(
      *testkit::find_check("incremental-basis-reduction"), inst);
  EXPECT_TRUE(r.passed) << r.message;
  const auto& m = w.system->matrix();
  EXPECT_EQ(linalg::cholesky_basis(m).size(), linalg::rank(m));
}

TEST_P(CrossTopology, HarnessChecksHoldOnCalibratedWorkloads) {
  // Seeded batch: every polynomial-time harness check must hold on real
  // Table I topologies, not just on the fuzz generator's small instances.
  // (The brute-force-oracle checks are excluded — their exhaustive-ER
  // guards reject instances of this size by design.)
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const exp::Workload w = make(60, seed);
    const testkit::TestInstance inst = testkit::from_workload(w, seed);
    for (const char* name :
         {"rank-oracles-agree", "incremental-basis-reduction",
          "probbound-accumulator-consistent", "trace-roundtrip"}) {
      const testkit::CheckResult r =
          testkit::run_check(*testkit::find_check(name), inst);
      EXPECT_TRUE(r.passed) << name << " on seed " << seed << ": "
                            << r.message;
    }
  }
}

TEST_P(CrossTopology, ProbBoundDominatesMonteCarloTruth) {
  // ProbBound is an upper bound on ER; a Monte Carlo estimate (500 runs)
  // must not exceed it by more than sampling noise.
  const exp::Workload w = make(100);
  core::ProbBoundEr bound(*w.system, *w.failures);
  Rng rng = w.eval_rng();
  core::MonteCarloEr mc(*w.system, *w.failures, 500, rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double b = bound.evaluate(all);
  const double m = mc.evaluate(all);
  EXPECT_GE(b, m - 0.05 * m - 1.0);
}

TEST_P(CrossTopology, RomeRespectsBudgetAndBeatsBaselineAtLowBudget) {
  const exp::Workload w = make(200);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = 0.06 * w.costs.subset_cost(*w.system, all);
  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
  EXPECT_LE(rome_sel.cost, budget + 1e-9);
  Rng sp_rng(3);
  const auto sp_sel =
      core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);
  Rng rng = w.eval_rng();
  RunningStats rome_rank, sp_rank;
  for (int s = 0; s < 80; ++s) {
    const auto v = w.failures->sample(rng);
    rome_rank.add(
        static_cast<double>(w.system->surviving_rank(rome_sel.paths, v)));
    sp_rank.add(
        static_cast<double>(w.system->surviving_rank(sp_sel.paths, v)));
  }
  EXPECT_GT(rome_rank.mean(), sp_rank.mean());
}

TEST_P(CrossTopology, MatRoMeBasisIsMostAvailableBasis) {
  // MatRoMe's modular objective: its basis must have total EA at least
  // that of any arbitrary Cholesky basis.
  const exp::Workload w = make(150);
  const auto mat = core::matrome(*w.system, *w.failures);
  Rng rng(5);
  for (int trial = 0; trial < 3; ++trial) {
    const auto arbitrary = core::select_path_basis(*w.system, rng);
    double arbitrary_ea = 0.0;
    for (std::size_t q : arbitrary.paths) {
      arbitrary_ea += w.system->expected_availability(q, *w.failures);
    }
    EXPECT_GE(mat.objective + 1e-9, arbitrary_ea);
  }
}

TEST_P(CrossTopology, SurvivingRankNeverExceedsNoFailureRank) {
  const exp::Workload w = make(120);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const std::size_t base = w.system->full_rank();
  Rng rng = w.eval_rng();
  for (int s = 0; s < 40; ++s) {
    const auto v = w.failures->sample(rng);
    EXPECT_LE(w.system->surviving_rank(all, v), base);
  }
}

TEST_P(CrossTopology, EvaluationMetricsConsistent) {
  const exp::Workload w = make(100);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng = w.eval_rng();
  exp::EvalOptions opts;
  opts.scenarios = 40;
  opts.identifiability = true;
  const auto eval =
      exp::evaluate_selection(*w.system, all, *w.failures, opts, rng);
  // Identifiability is bounded by rank in every scenario, hence in mean.
  EXPECT_LE(eval.identifiability.stats.mean(), eval.rank.stats.mean() + 1e-9);
  EXPECT_LE(eval.identifiability.stats.max(),
            static_cast<double>(w.graph.edge_count()));
  // CDF endpoints.
  EXPECT_DOUBLE_EQ(eval.rank.distribution.cdf(eval.rank.stats.max()), 1.0);
  EXPECT_DOUBLE_EQ(
      eval.rank.distribution.cdf(eval.rank.stats.min() - 1.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, CrossTopology,
    ::testing::Combine(::testing::Values(graph::IspTopology::kAS1755,
                                         graph::IspTopology::kAS3257,
                                         graph::IspTopology::kAS1239),
                       ::testing::Values(2.0, 5.0)),
    [](const ::testing::TestParamInfo<Param>& info) {
      const auto profile = graph::isp_profile(std::get<0>(info.param));
      const int intensity10 =
          static_cast<int>(std::get<1>(info.param) * 10.0);
      return profile.name + "_i" + std::to_string(intensity10);
    });

}  // namespace
}  // namespace rnt
