// Tests for the exploration-strategy baselines (epsilon-greedy, Thompson
// sampling) and the generalized learner interface.
#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "exp/workload.h"
#include "learning/baselines.h"
#include "learning/lsr.h"
#include "learning/simulator.h"

namespace rnt::learning {
namespace {

struct World {
  exp::Workload w;
  explicit World(std::uint64_t seed)
      : w(exp::make_custom_workload(30, 60, 40, seed, 6.0)) {}
  double budget() const {
    std::vector<std::size_t> all(w.system->path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    return 0.35 * w.costs.subset_cost(*w.system, all);
  }
};

TEST(EpsilonGreedy, ValidatesArguments) {
  World world(1);
  EXPECT_THROW(
      EpsilonGreedy(*world.w.system, world.w.costs, 0.0, 0.1, Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(
      EpsilonGreedy(*world.w.system, world.w.costs, 100.0, 1.5, Rng(1)),
      std::invalid_argument);
}

TEST(EpsilonGreedy, CoversAllPathsThenActs) {
  World world(2);
  EpsilonGreedy learner(*world.w.system, world.w.costs, world.budget(), 0.1,
                        Rng(2));
  Rng rng(3);
  const auto result =
      run_learner(learner, *world.w.system, *world.w.failures, 60, rng);
  EXPECT_EQ(result.records.size(), 60u);
  EXPECT_EQ(learner.epoch(), 60u);
  // After 60 epochs every path has an estimate in [0, 1].
  for (double t : learner.theta_hat()) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(EpsilonGreedy, RespectsBudgetInActions) {
  World world(3);
  const double budget = world.budget();
  EpsilonGreedy learner(*world.w.system, world.w.costs, budget, 0.5, Rng(4));
  Rng rng(5);
  for (int epoch = 0; epoch < 30; ++epoch) {
    const auto action = learner.select_action();
    EXPECT_LE(world.w.costs.subset_cost(*world.w.system, action),
              budget + 1e-9);
    std::vector<bool> avail(action.size(), true);
    learner.observe(action, avail);
  }
}

TEST(EpsilonGreedy, ObserveValidatesSizes) {
  World world(4);
  EpsilonGreedy learner(*world.w.system, world.w.costs, world.budget(), 0.1,
                        Rng(6));
  const auto action = learner.select_action();
  EXPECT_THROW(learner.observe(action, std::vector<bool>(action.size() + 2)),
               std::invalid_argument);
}

TEST(ThompsonSampling, ValidatesArguments) {
  World world(5);
  EXPECT_THROW(ThompsonSampling(*world.w.system, world.w.costs, 0.0, Rng(1)),
               std::invalid_argument);
}

TEST(ThompsonSampling, ActionsRespectBudget) {
  World world(6);
  const double budget = world.budget();
  ThompsonSampling learner(*world.w.system, world.w.costs, budget, Rng(7));
  Rng rng(8);
  for (int epoch = 0; epoch < 20; ++epoch) {
    const auto action = learner.select_action();
    EXPECT_FALSE(action.empty());
    EXPECT_LE(world.w.costs.subset_cost(*world.w.system, action),
              budget + 1e-9);
    std::vector<bool> avail(action.size());
    const auto v = world.w.failures->sample(rng);
    for (std::size_t i = 0; i < action.size(); ++i) {
      avail[i] = world.w.system->path_survives(action[i], v);
    }
    learner.observe(action, avail);
  }
  EXPECT_EQ(learner.epoch(), 20u);
}

TEST(ThompsonSampling, PosteriorConcentrates) {
  // A path observed always-up must end with a high posterior mean, one
  // observed always-down with a low one.
  World world(7);
  ThompsonSampling learner(*world.w.system, world.w.costs, world.budget(),
                           Rng(9));
  // Feed synthetic observations directly.
  for (int i = 0; i < 50; ++i) {
    learner.observe({0}, {true});
    learner.observe({1}, {false});
  }
  const auto sel = learner.final_selection();
  // Path 0 should be far more attractive than path 1: it appears in the
  // exploit selection or at minimum the posterior means separate.  Verify
  // through selection membership.
  const bool has0 =
      std::find(sel.paths.begin(), sel.paths.end(), 0u) != sel.paths.end();
  const bool has1 =
      std::find(sel.paths.begin(), sel.paths.end(), 1u) != sel.paths.end();
  EXPECT_TRUE(has0 || !has1);
}

TEST(Learners, AllReachReasonablePerformance) {
  // Property-style comparison: every learner's final selection reaches a
  // sane fraction of the clairvoyant score on a small workload.
  World world(8);
  const double budget = world.budget();

  core::ProbBoundEr engine(*world.w.system, *world.w.failures);
  const auto clairvoyant =
      core::rome(*world.w.system, world.w.costs, budget, engine);
  Rng eval_rng(10);
  const double s_clair = estimate_expected_reward(
      *world.w.system, clairvoyant.paths, *world.w.failures, 600, eval_rng);

  auto score = [&](PathLearner& learner) {
    Rng rng(11);
    run_learner(learner, *world.w.system, *world.w.failures, 250, rng);
    Rng erng(12);
    return estimate_expected_reward(*world.w.system,
                                    learner.final_selection().paths,
                                    *world.w.failures, 600, erng);
  };

  Lsr lsr(*world.w.system, world.w.costs, LsrConfig{.budget = budget});
  EpsilonGreedy eg(*world.w.system, world.w.costs, budget, 0.1, Rng(13));
  ThompsonSampling ts(*world.w.system, world.w.costs, budget, Rng(14));
  EXPECT_GE(score(lsr), 0.7 * s_clair);
  EXPECT_GE(score(eg), 0.7 * s_clair);
  EXPECT_GE(score(ts), 0.7 * s_clair);
}

TEST(Learners, PolymorphicUseThroughBasePointer) {
  World world(9);
  const double budget = world.budget();
  std::vector<std::unique_ptr<PathLearner>> learners;
  learners.push_back(std::make_unique<Lsr>(*world.w.system, world.w.costs,
                                           LsrConfig{.budget = budget}));
  learners.push_back(std::make_unique<EpsilonGreedy>(
      *world.w.system, world.w.costs, budget, 0.2, Rng(20)));
  learners.push_back(std::make_unique<ThompsonSampling>(
      *world.w.system, world.w.costs, budget, Rng(21)));
  Rng rng(22);
  for (auto& learner : learners) {
    const auto result =
        run_learner(*learner, *world.w.system, *world.w.failures, 15, rng);
    EXPECT_EQ(result.records.size(), 15u);
    EXPECT_EQ(learner->epoch(), 15u);
    EXPECT_FALSE(learner->final_selection().paths.empty());
  }
}

}  // namespace
}  // namespace rnt::learning
