// Tests for failure localization, the combined-monitor path generator, and
// the Waxman topology generator.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "exp/workload.h"
#include "graph/generators.h"
#include "tomo/localization.h"
#include "tomo/monitors.h"

namespace rnt {
namespace {

/// Line 0-1-2-3 with paths (l0), (l0,l1), (l0,l1,l2).
tomo::PathSystem line_system() {
  std::vector<tomo::ProbePath> paths(3);
  paths[0].links = {0};
  paths[0].hops = 1;
  paths[1].links = {0, 1};
  paths[1].hops = 2;
  paths[2].links = {0, 1, 2};
  paths[2].hops = 3;
  return tomo::PathSystem(3, paths);
}

// --------------------------------------------------------------------------
// localize_single_failure
// --------------------------------------------------------------------------

TEST(Localization, ExactWhenPatternSeparates) {
  const tomo::PathSystem sys = line_system();
  // l1 fails: paths 1, 2 fail, path 0 survives -> candidates {l1}
  // (l0 exonerated by path 0; l2 only on path 2, not on path 1).
  failures::FailureVector v = {false, true, false};
  const auto result = tomo::localize_single_failure(sys, {0, 1, 2}, v);
  ASSERT_TRUE(result.exact());
  EXPECT_EQ(result.candidates.front(), 1u);
}

TEST(Localization, AmbiguousWhenPatternCannotSeparate) {
  const tomo::PathSystem sys = line_system();
  // l2 fails: only path 2 fails; l2 is the only link of path 2 not on a
  // surviving path -> still exact here.  Use subset {2} alone instead:
  // all of l0, l1, l2 are candidates.
  failures::FailureVector v = {false, false, true};
  const auto result = tomo::localize_single_failure(sys, {2}, v);
  EXPECT_EQ(result.candidates.size(), 3u);
  EXPECT_FALSE(result.exact());
}

TEST(Localization, NoFailureNoCandidates) {
  const tomo::PathSystem sys = line_system();
  failures::FailureVector v(3, false);
  const auto result = tomo::localize_single_failure(sys, {0, 1, 2}, v);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(Localization, InvisibleFailure) {
  const tomo::PathSystem sys = line_system();
  // Probe only path 0; l2's failure is invisible.
  failures::FailureVector v = {false, false, true};
  const auto result = tomo::localize_single_failure(sys, {0}, v);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(Localization, CandidatesAlwaysContainTrueCulpritWhenVisible) {
  // Property: under a single-link failure, if any probed path fails, the
  // true culprit is among the candidates.
  const exp::Workload w = exp::make_custom_workload(40, 80, 60, 17, 5.0);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng(18);
  for (int t = 0; t < 50; ++t) {
    const auto v = w.failures->sample_exactly_k(1, rng);
    const auto failed =
        static_cast<graph::EdgeId>(std::find(v.begin(), v.end(), true) -
                                   v.begin());
    const auto result = tomo::localize_single_failure(*w.system, all, v);
    bool visible = false;
    for (std::size_t q : all) {
      if (!w.system->path_survives(q, v)) {
        visible = true;
        break;
      }
    }
    if (visible) {
      EXPECT_TRUE(std::binary_search(result.candidates.begin(),
                                     result.candidates.end(), failed));
    } else {
      EXPECT_TRUE(result.candidates.empty());
    }
  }
}

TEST(Localization, ScoreAccountingConsistent) {
  const exp::Workload w = exp::make_custom_workload(40, 80, 60, 19, 5.0);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng(20);
  const auto score =
      tomo::score_localization(*w.system, all, *w.failures, 100, rng);
  EXPECT_EQ(score.trials, 100u);
  EXPECT_EQ(score.exact + score.ambiguous + score.invisible, 100u);
  EXPECT_GE(score.mean_candidates, score.exact > 0 ? 1.0 : 0.0);
  EXPECT_LE(score.exact_fraction(), 1.0);
}

TEST(Localization, SingleFailureScoringNeverMisleads) {
  // Regression for the hit/misled conflation: with one concurrent failure
  // the lone culprit can never be exonerated, so misled must stay 0 and
  // hit_fraction must equal (exact + ambiguous) / trials — previously the
  // classifier silently counted culprit-missing trials as ambiguous.
  const exp::Workload w = exp::make_custom_workload(40, 80, 60, 19, 5.0);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng(30);
  const auto score =
      tomo::score_localization(*w.system, all, *w.failures, 120, rng, 1);
  EXPECT_EQ(score.misled, 0u);
  EXPECT_EQ(score.exact + score.ambiguous + score.invisible, 120u);
  EXPECT_NEAR(score.hit_fraction(),
              static_cast<double>(score.exact + score.ambiguous) / 120.0,
              1e-12);
}

TEST(Localization, ConcurrentFailuresSurfaceMisledTrials) {
  // Line 0-1-2-3 probed by (l0), (l0,l1), (l0,l1,l2): fail l0 AND l2
  // together and all three probes fail.  The single-link intersection is
  // {l0} — l2 is visible (path 2 crossed it and failed) yet missing from
  // the candidates, the textbook misled trial the old scorer filed under
  // "ambiguous".  With every link forced to fail, every trial must land
  // in the misled bucket and hit_fraction must be 0.
  const tomo::PathSystem sys = line_system();
  const failures::FailureModel certain = failures::uniform_model(3, 1.0);
  Rng rng(31);
  const auto score = tomo::score_localization(sys, {0, 1, 2}, certain, 20,
                                              rng, 3);
  EXPECT_EQ(score.trials, 20u);
  EXPECT_EQ(score.misled, 20u);
  EXPECT_EQ(score.exact + score.ambiguous + score.invisible, 0u);
  EXPECT_EQ(score.hit_fraction(), 0.0);
}

TEST(Localization, PairwiseAccountingPartitionsTrials) {
  const exp::Workload w = exp::make_custom_workload(40, 80, 60, 19, 5.0);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng(32);
  const auto score =
      tomo::score_localization(*w.system, all, *w.failures, 150, rng, 2);
  EXPECT_EQ(score.trials, 150u);
  EXPECT_EQ(score.exact + score.ambiguous + score.misled + score.invisible,
            150u);
}

TEST(Localization, RobustSelectionLocalizesBetterThanTinyOne) {
  // Probing everything localizes at least as well as probing one path.
  const exp::Workload w = exp::make_custom_workload(40, 80, 60, 21, 5.0);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng1(22), rng2(22);
  const auto full =
      tomo::score_localization(*w.system, all, *w.failures, 150, rng1);
  const auto tiny =
      tomo::score_localization(*w.system, {0}, *w.failures, 150, rng2);
  EXPECT_GE(full.exact, tiny.exact);
  EXPECT_LE(full.invisible, tiny.invisible);
}

// --------------------------------------------------------------------------
// Combined-monitor pair paths
// --------------------------------------------------------------------------

TEST(PairPaths, AllUnorderedPairsOnce) {
  Rng rng(23);
  const graph::Graph g = graph::connected_erdos_renyi(20, 40, rng);
  const std::vector<graph::NodeId> monitors = {1, 4, 7, 11};
  const auto paths = tomo::generate_pair_paths(g, monitors);
  EXPECT_EQ(paths.size(), 6u);  // C(4,2)
  std::set<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (const auto& p : paths) {
    const auto a = std::min(p.source, p.destination);
    const auto b = std::max(p.source, p.destination);
    EXPECT_TRUE(pairs.insert({a, b}).second) << "duplicate pair";
    // Shortest-path weight agrees with direct routing.
    const auto direct = graph::shortest_path(g, p.source, p.destination);
    ASSERT_TRUE(direct.has_value());
    EXPECT_NEAR(p.routing_weight, direct->weight, 1e-9);
  }
}

TEST(PairPaths, SkipsDuplicateMonitors) {
  Rng rng(24);
  const graph::Graph g = graph::connected_erdos_renyi(10, 20, rng);
  const auto paths = tomo::generate_pair_paths(g, {2, 2, 5});
  // Pairs: (2,2) skipped, (2,5) twice? No: (m[0],m[1]) skipped as equal,
  // (m[0],m[2]) and (m[1],m[2]) both valid -> 2 paths between 2 and 5.
  EXPECT_EQ(paths.size(), 2u);
}

// --------------------------------------------------------------------------
// Waxman generator
// --------------------------------------------------------------------------

TEST(Waxman, ValidatesParameters) {
  Rng rng(25);
  EXPECT_THROW(graph::waxman(10, 0.0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(graph::waxman(10, 0.5, 1.5, rng), std::invalid_argument);
  EXPECT_NO_THROW(graph::waxman(10, 0.5, 0.5, rng));
}

TEST(Waxman, AlphaOneBetaOneIsDense) {
  // alpha=1, beta=1: edge probability >= e^-1 ~ 0.37 for every pair.
  Rng rng(26);
  const graph::Graph g = graph::waxman(30, 1.0, 1.0, rng);
  const double pairs = 30.0 * 29.0 / 2.0;
  EXPECT_GT(static_cast<double>(g.edge_count()), 0.25 * pairs);
}

TEST(Waxman, DistanceDecayFavorsShortEdges) {
  // With small beta, long edges are rare: the graph is much sparser than
  // alpha alone would suggest.
  Rng rng(27);
  const graph::Graph sparse = graph::waxman(40, 1.0, 0.05, rng);
  Rng rng2(27);
  const graph::Graph dense = graph::waxman(40, 1.0, 1.0, rng2);
  EXPECT_LT(sparse.edge_count(), dense.edge_count());
}

TEST(Waxman, ComposesWithMakeConnected) {
  Rng rng(28);
  graph::Graph g = graph::waxman(25, 0.4, 0.15, rng);
  graph::make_connected(g, rng);
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace rnt
