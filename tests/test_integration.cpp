// End-to-end integration tests across workload construction, the selection
// algorithms, metric evaluation, and online learning — the same plumbing
// the figure benches use, exercised at reduced scale with assertions on the
// paper's qualitative claims (robust selection beats the failure-agnostic
// baseline).
#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_rank.h"
#include "core/matrome.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "exp/metrics.h"
#include "exp/workload.h"
#include "learning/lsr.h"
#include "learning/simulator.h"

namespace rnt::exp {
namespace {

TEST(Workload, MaterializesAllPieces) {
  const Workload w = make_custom_workload(50, 100, 60, /*seed=*/3);
  EXPECT_EQ(w.graph.node_count(), 50u);
  EXPECT_EQ(w.graph.edge_count(), 100u);
  EXPECT_EQ(w.system->path_count(), 60u);
  EXPECT_EQ(w.failures->link_count(), 100u);
  EXPECT_FALSE(w.costs.is_unit());
  EXPECT_EQ(w.topology_name, "custom");
}

TEST(Workload, UnitCostOption) {
  const Workload w =
      make_custom_workload(30, 60, 30, 4, /*failure_intensity=*/1.0,
                           /*unit_costs=*/true);
  EXPECT_TRUE(w.costs.is_unit());
}

TEST(Workload, DeterministicAcrossCalls) {
  const Workload a = make_custom_workload(40, 80, 40, 7);
  const Workload b = make_custom_workload(40, 80, 40, 7);
  ASSERT_EQ(a.system->path_count(), b.system->path_count());
  for (std::size_t i = 0; i < a.system->path_count(); ++i) {
    EXPECT_EQ(a.system->path(i), b.system->path(i));
  }
  EXPECT_EQ(a.failures->probabilities(), b.failures->probabilities());
}

TEST(Workload, TableITopologies) {
  WorkloadSpec spec;
  spec.topology = graph::IspTopology::kAS1755;
  spec.candidate_paths = 100;
  spec.seed = 5;
  const Workload w = make_workload(spec);
  EXPECT_EQ(w.topology_name, "AS1755");
  EXPECT_EQ(w.graph.node_count(), 87u);
  EXPECT_EQ(w.graph.edge_count(), 161u);
  EXPECT_EQ(w.system->path_count(), 100u);
}

TEST(Metrics, EvaluateSelectionBasics) {
  const Workload w = make_custom_workload(40, 80, 50, 11, 5.0);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng = w.eval_rng();
  EvalOptions opts;
  opts.scenarios = 100;
  opts.identifiability = true;
  const SelectionEvaluation eval =
      evaluate_selection(*w.system, all, *w.failures, opts, rng);
  EXPECT_EQ(eval.rank.stats.count(), 100u);
  EXPECT_EQ(eval.identifiability.stats.count(), 100u);
  EXPECT_LE(eval.rank.stats.max(), static_cast<double>(eval.no_failure_rank));
  EXPECT_LE(eval.identifiability.stats.mean(), eval.rank.stats.mean() + 1e-9);
  EXPECT_GE(eval.rank.stats.min(), 0.0);
}

TEST(Metrics, LossIsNonNegativeAndBounded) {
  const Workload w = make_custom_workload(40, 80, 50, 12, 5.0);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng = w.eval_rng();
  const LossEvaluation loss =
      evaluate_loss(*w.system, all, *w.failures, 100, true, rng);
  EXPECT_GE(loss.rank_loss.min(), 0.0);
  EXPECT_LE(loss.rank_loss.max(), static_cast<double>(w.system->full_rank()));
  EXPECT_GE(loss.identifiability_loss.min(), -1e-9);
}

TEST(Integration, RomeBeatsSelectPathUnderFailures) {
  // The paper's headline claim (Fig. 5) at miniature scale: under a failure
  // model with substantial failure mass, ProbRoMe's selection sustains a
  // higher expected surviving rank than the budget-fitted arbitrary basis.
  double rome_total = 0.0;
  double select_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Workload w = make_custom_workload(40, 80, 60, seed, 8.0);
    const double budget = 2500.0;
    core::ProbBoundEr engine(*w.system, *w.failures);
    const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
    Rng sp_rng(seed);
    const auto sp_sel =
        core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);
    EXPECT_LE(rome_sel.cost, budget + 1e-9);
    EXPECT_LE(sp_sel.cost, budget + 1e-9);
    Rng rng = w.eval_rng();
    EvalOptions opts;
    opts.scenarios = 120;
    const auto rome_eval =
        evaluate_selection(*w.system, rome_sel.paths, *w.failures, opts, rng);
    const auto sp_eval =
        evaluate_selection(*w.system, sp_sel.paths, *w.failures, opts, rng);
    rome_total += rome_eval.rank.stats.mean();
    select_total += sp_eval.rank.stats.mean();
  }
  EXPECT_GT(rome_total, select_total);
}

TEST(Integration, MatRomeBeatsSelectPathOnRankLoss) {
  // Figures 8-9 at miniature scale: under the independence constraint,
  // MatRoMe's basis loses less rank under failures than an arbitrary basis.
  double mat_loss = 0.0;
  double sp_loss = 0.0;
  for (std::uint64_t seed = 4; seed <= 6; ++seed) {
    const Workload w = make_custom_workload(40, 80, 60, seed, 8.0, true);
    const auto mat_sel = core::matrome(*w.system, *w.failures);
    Rng sp_rng(seed);
    const auto sp_sel = core::select_path_basis(*w.system, sp_rng);
    ASSERT_EQ(mat_sel.paths.size(), sp_sel.paths.size());  // Both bases.
    Rng rng = w.eval_rng();
    mat_loss += evaluate_loss(*w.system, mat_sel.paths, *w.failures, 120,
                              false, rng)
                    .rank_loss.mean();
    sp_loss += evaluate_loss(*w.system, sp_sel.paths, *w.failures, 120,
                             false, rng)
                   .rank_loss.mean();
  }
  EXPECT_LT(mat_loss, sp_loss);
}

TEST(Integration, LsrLearnsCompetitiveSelection) {
  // Fig. 10 at miniature scale: after a few hundred epochs LSR's learned
  // selection approaches the clairvoyant ProbRoMe and beats SelectPath.
  const Workload w = make_custom_workload(30, 60, 40, 21, 6.0);
  const double budget = 2000.0;

  learning::Lsr learner(*w.system, w.costs,
                        learning::LsrConfig{.budget = budget});
  Rng sim_rng(22);
  learning::run_lsr(learner, *w.system, *w.failures, 400, sim_rng);
  const auto learned = learner.final_selection();

  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto clairvoyant = core::rome(*w.system, w.costs, budget, engine);
  Rng sp_rng(23);
  const auto baseline =
      core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);

  Rng eval_rng(24);
  const double s_learned = learning::estimate_expected_reward(
      *w.system, learned.paths, *w.failures, 800, eval_rng);
  const double s_clair = learning::estimate_expected_reward(
      *w.system, clairvoyant.paths, *w.failures, 800, eval_rng);
  const double s_base = learning::estimate_expected_reward(
      *w.system, baseline.paths, *w.failures, 800, eval_rng);

  EXPECT_GE(s_learned, 0.75 * s_clair);
  EXPECT_GT(s_learned, s_base);
}

TEST(Integration, EvalRngIsStableButDistinctFromConstruction) {
  const Workload w = make_custom_workload(30, 60, 20, 31);
  Rng a = w.eval_rng();
  Rng b = w.eval_rng();
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace rnt::exp
