// Tests for the graph substrate: core graph invariants, Dijkstra (validated
// against Bellman-Ford), generators, the calibrated ISP topologies, and
// edge-list I/O round-tripping.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/isp_topology.h"
#include "graph/shortest_path.h"
#include "util/rng.h"

namespace rnt::graph {
namespace {

// --------------------------------------------------------------------------
// Graph
// --------------------------------------------------------------------------

TEST(Graph, AddEdgeAndAdjacency) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1, 2.0);
  const EdgeId e1 = g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.edge(e0).weight, 2.0);
  EXPECT_EQ(g.edge(e1).other(1), 2u);
  EXPECT_TRUE(g.find_edge(1, 0).has_value());
  EXPECT_FALSE(g.find_edge(0, 3).has_value());
}

TEST(Graph, RejectsInvalidEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);   // self-loop
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);       // bad node
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);   // duplicate
}

TEST(Graph, AddNode) {
  Graph g(2);
  const NodeId n = g.add_node();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(g.node_count(), 3u);
  g.add_edge(n, 0);
  EXPECT_EQ(g.degree(n), 1u);
}

TEST(Graph, Connectivity) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.is_connected());
  EXPECT_EQ(g.component_count(), 3u);  // {0,1,2}, {3}, {4}
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.component_count(), 1u);
}

TEST(Graph, EmptyGraphIsConnected) {
  Graph g(0);
  EXPECT_TRUE(g.is_connected());
}

// --------------------------------------------------------------------------
// Shortest paths
// --------------------------------------------------------------------------

TEST(ShortestPath, SimpleChain) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const auto p = shortest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->weight, 6.0);
  EXPECT_EQ(p->hop_count(), 3u);
  EXPECT_EQ(p->nodes.front(), 0u);
  EXPECT_EQ(p->nodes.back(), 3u);
}

TEST(ShortestPath, PrefersLighterDetour) {
  Graph g(3);
  g.add_edge(0, 2, 10.0);          // direct but heavy
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);           // detour, total 2
  const auto p = shortest_path(g, 0, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->weight, 2.0);
  EXPECT_EQ(p->hop_count(), 2u);
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(shortest_path(g, 0, 3).has_value());
}

TEST(ShortestPath, PathEdgesAreConsistent) {
  Rng rng(5);
  Graph g = connected_erdos_renyi(30, 60, rng, WeightModel::kUniformReal);
  const auto tree = dijkstra(g, 0);
  for (NodeId t = 1; t < g.node_count(); ++t) {
    const auto p = extract_path(g, tree, t);
    ASSERT_TRUE(p.has_value());
    ASSERT_EQ(p->edges.size() + 1, p->nodes.size());
    double w = 0.0;
    for (std::size_t i = 0; i < p->edges.size(); ++i) {
      const Edge& e = g.edge(p->edges[i]);
      // Edge i must connect nodes i and i+1.
      const bool forward = e.u == p->nodes[i] && e.v == p->nodes[i + 1];
      const bool backward = e.v == p->nodes[i] && e.u == p->nodes[i + 1];
      EXPECT_TRUE(forward || backward);
      w += e.weight;
    }
    EXPECT_NEAR(w, p->weight, 1e-9);
  }
}

TEST(ShortestPath, DijkstraMatchesBellmanFord) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = connected_erdos_renyi(25, 50, rng, WeightModel::kUniformReal);
    const NodeId src = static_cast<NodeId>(rng.index(g.node_count()));
    const auto tree = dijkstra(g, src);
    const auto bf = bellman_ford_distances(g, src);
    for (NodeId n = 0; n < g.node_count(); ++n) {
      EXPECT_NEAR(tree.distance[n], bf[n], 1e-9);
    }
  }
}

TEST(ShortestPath, DeterministicAcrossRuns) {
  Rng rng(33);
  Graph g = connected_erdos_renyi(20, 45, rng, WeightModel::kUnit);
  const auto p1 = shortest_path(g, 0, 10);
  const auto p2 = shortest_path(g, 0, 10);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->nodes, p2->nodes);
}

TEST(ShortestPath, SourceOutOfRangeThrows) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(dijkstra(g, 7), std::out_of_range);
  EXPECT_THROW(bellman_ford_distances(g, 7), std::out_of_range);
}

// --------------------------------------------------------------------------
// Generators
// --------------------------------------------------------------------------

TEST(Generators, ErdosRenyiHasRequestedEdges) {
  Rng rng(1);
  Graph g = erdos_renyi(20, 40, rng);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_EQ(g.edge_count(), 40u);
  EXPECT_THROW(erdos_renyi(4, 100, rng), std::invalid_argument);
}

TEST(Generators, ConnectedErdosRenyiIsConnected) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = connected_erdos_renyi(30, 35, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.edge_count(), 35u);
  }
}

TEST(Generators, ConnectedErdosRenyiSparseFallsBackToTree) {
  Rng rng(3);
  Graph g = connected_erdos_renyi(10, 0, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.edge_count(), 9u);  // Spanning tree.
}

TEST(Generators, BarabasiAlbertConnectedHeavyTail) {
  Rng rng(4);
  Graph g = barabasi_albert(200, 2, rng);
  EXPECT_TRUE(g.is_connected());
  // Heavy tail: max degree should far exceed the mean degree.
  std::size_t max_deg = 0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    max_deg = std::max(max_deg, g.degree(n));
  }
  const double mean_deg =
      2.0 * static_cast<double>(g.edge_count()) / static_cast<double>(g.node_count());
  EXPECT_GT(static_cast<double>(max_deg), 3.0 * mean_deg);
}

TEST(Generators, BarabasiAlbertValidation) {
  Rng rng(4);
  EXPECT_THROW(barabasi_albert(2, 3, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(Generators, RingWithChords) {
  Rng rng(6);
  Graph g = ring_with_chords(10, 5, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_THROW(ring_with_chords(2, 0, rng), std::invalid_argument);
}

TEST(Generators, MakeConnectedJoinsComponents) {
  Rng rng(8);
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  make_connected(g, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.edge_count(), 5u);  // Exactly components-1 added.
}

TEST(Generators, RandomGeometricRadiusOne) {
  Rng rng(9);
  Graph g = random_geometric(12, 1.5, rng);  // Radius covers unit square.
  EXPECT_EQ(g.edge_count(), 12u * 11u / 2u);  // Complete graph.
}

TEST(Generators, WeightModels) {
  Rng rng(10);
  EXPECT_DOUBLE_EQ(sample_weight(WeightModel::kUnit, rng), 1.0);
  for (int i = 0; i < 100; ++i) {
    const double w = sample_weight(WeightModel::kUniformInteger, rng);
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 20.0);
    EXPECT_DOUBLE_EQ(w, std::floor(w));
    const double r = sample_weight(WeightModel::kUniformReal, rng);
    EXPECT_GE(r, 1.0);
    EXPECT_LT(r, 10.0);
  }
}

// --------------------------------------------------------------------------
// ISP topologies (Table I calibration)
// --------------------------------------------------------------------------

TEST(IspTopology, ProfilesMatchTableI) {
  const auto profiles = all_isp_profiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "AS1755");
  EXPECT_EQ(profiles[0].nodes, 87u);
  EXPECT_EQ(profiles[0].links, 161u);
  EXPECT_EQ(profiles[1].name, "AS3257");
  EXPECT_EQ(profiles[1].nodes, 161u);
  EXPECT_EQ(profiles[1].links, 328u);
  EXPECT_EQ(profiles[2].name, "AS1239");
  EXPECT_EQ(profiles[2].nodes, 315u);
  EXPECT_EQ(profiles[2].links, 972u);
}

TEST(IspTopology, ParseNames) {
  EXPECT_EQ(parse_isp_topology("as1755"), IspTopology::kAS1755);
  EXPECT_EQ(parse_isp_topology("AS3257"), IspTopology::kAS3257);
  EXPECT_EQ(parse_isp_topology("As1239"), IspTopology::kAS1239);
  EXPECT_THROW(parse_isp_topology("AS9999"), std::invalid_argument);
}

class IspTopologyBuild : public ::testing::TestWithParam<IspTopology> {};

TEST_P(IspTopologyBuild, ExactSizesConnectedWeighted) {
  Rng rng(123);
  const IspProfile profile = isp_profile(GetParam());
  const Graph g = build_isp_topology(GetParam(), rng);
  EXPECT_EQ(g.node_count(), profile.nodes);
  EXPECT_EQ(g.edge_count(), profile.links);
  EXPECT_TRUE(g.is_connected());
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 20.0);
  }
}

TEST_P(IspTopologyBuild, HeavyTailedDegrees) {
  Rng rng(321);
  const Graph g = build_isp_topology(GetParam(), rng);
  std::size_t max_deg = 0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    max_deg = std::max(max_deg, g.degree(n));
  }
  const double mean_deg = 2.0 * static_cast<double>(g.edge_count()) /
                          static_cast<double>(g.node_count());
  EXPECT_GT(static_cast<double>(max_deg), 2.5 * mean_deg);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, IspTopologyBuild,
                         ::testing::Values(IspTopology::kAS1755,
                                           IspTopology::kAS3257,
                                           IspTopology::kAS1239));

TEST(IspTopology, CustomSizesValidated) {
  Rng rng(5);
  EXPECT_THROW(build_isp_like(2, 1, rng), std::invalid_argument);
  EXPECT_THROW(build_isp_like(10, 5, rng), std::invalid_argument);   // < n-1
  EXPECT_THROW(build_isp_like(5, 100, rng), std::invalid_argument);  // > max
  const Graph g = build_isp_like(20, 30, rng);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_EQ(g.edge_count(), 30u);
  EXPECT_TRUE(g.is_connected());
}

TEST(IspTopology, DeterministicGivenSeed) {
  Rng rng1(77);
  Rng rng2(77);
  const Graph a = build_isp_topology(IspTopology::kAS1755, rng1);
  const Graph b = build_isp_topology(IspTopology::kAS1755, rng2);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(static_cast<EdgeId>(e)), b.edge(static_cast<EdgeId>(e)));
  }
}

// --------------------------------------------------------------------------
// Edge-list I/O
// --------------------------------------------------------------------------

TEST(GraphIo, RoundTrip) {
  Rng rng(88);
  const Graph g = connected_erdos_renyi(15, 30, rng, WeightModel::kUniformReal);
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph h = read_edge_list(buffer);
  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(h.edge(static_cast<EdgeId>(e)).u, g.edge(static_cast<EdgeId>(e)).u);
    EXPECT_NEAR(h.edge(static_cast<EdgeId>(e)).weight,
                g.edge(static_cast<EdgeId>(e)).weight, 1e-9);
  }
}

TEST(GraphIo, ParsesCommentsAndDefaults) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "0 1 2.5\n"
      "1 2   # trailing comment, default weight\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 2.5);
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 1.0);
}

TEST(GraphIo, SkipsDuplicateEdges) {
  std::istringstream in("0 1\n1 0 5.0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 1.0);  // First occurrence kept.
}

TEST(GraphIo, RejectsMalformedInput) {
  std::istringstream self_loop("3 3\n");
  EXPECT_THROW(read_edge_list(self_loop), std::runtime_error);
  std::istringstream negative("-1 2\n");
  EXPECT_THROW(read_edge_list(negative), std::runtime_error);
  std::istringstream one_field("4\n");
  EXPECT_THROW(read_edge_list(one_field), std::runtime_error);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/file.txt"), std::runtime_error);
}

TEST(GraphIo, EmptyInput) {
  std::istringstream in("# nothing\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

}  // namespace
}  // namespace rnt::graph
