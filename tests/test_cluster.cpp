// The sharded cluster layer: shard planner, coordinator merge
// determinism, and failover.
//
// The acceptance property throughout: whatever the worker count, the
// slice weights, or which worker dies mid-run, the cluster's ER values
// and RoMe selections must be *bitwise* identical to the single-node
// KernelErEngine — workers only ever ship integers (ranks and
// independence bits), and the coordinator replays the engine's exact
// float summation order.  EXPECT_EQ on doubles here is deliberate.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/coordinator.h"
#include "cluster/shard_planner.h"
#include "core/rome.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/workload_cache.h"

namespace rnt::cluster {
namespace {

// --------------------------------------------------------------------------
// Shard planner
// --------------------------------------------------------------------------

TEST(ShardPlanner, SlicesAreContiguousProportionalAndDeterministic) {
  const std::vector<double> weights{1.0, 1.0, 2.0};
  const std::vector<Slice> slices = plan_slices(100, weights);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].begin, 0u);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(slices[i].begin, slices[i - 1].end);
    }
    covered += slices[i].size();
  }
  EXPECT_EQ(covered, 100u);
  EXPECT_EQ(slices[0].size(), 25u);
  EXPECT_EQ(slices[1].size(), 25u);
  EXPECT_EQ(slices[2].size(), 50u);
  EXPECT_EQ(plan_slices(100, weights), slices);  // Pure function.
}

TEST(ShardPlanner, LargestRemainderIsWithinOneOfProportional) {
  const std::vector<double> weights{1.0, 1.0, 1.0};
  const std::vector<Slice> slices = plan_slices(50, weights);
  std::size_t covered = 0;
  for (const Slice& s : slices) {
    // 50/3: every worker gets 16 or 17.
    EXPECT_GE(s.size(), 16u);
    EXPECT_LE(s.size(), 17u);
    covered += s.size();
  }
  EXPECT_EQ(covered, 50u);
}

TEST(ShardPlanner, MoreWorkersThanScenariosLeavesEmptySlices) {
  const std::vector<Slice> slices = plan_slices(2, {1.0, 1.0, 1.0, 1.0});
  std::size_t covered = 0, empty = 0;
  for (const Slice& s : slices) {
    covered += s.size();
    empty += s.empty() ? 1 : 0;
  }
  EXPECT_EQ(covered, 2u);
  EXPECT_EQ(empty, 2u);
}

TEST(ShardPlanner, RejectsBadWeights) {
  EXPECT_THROW(plan_slices(10, {}), std::invalid_argument);
  EXPECT_THROW(plan_slices(10, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(plan_slices(10, {1.0, -2.0}), std::invalid_argument);
}

TEST(ShardPlanner, AssignOwnersKeepsAliveAndFailsOverRoundRobin) {
  EXPECT_EQ(assign_owners(3, {true, true, true}),
            (std::vector<std::size_t>{0, 1, 2}));
  // Worker 1 dead: its slice goes to a survivor; the others stay home.
  const std::vector<std::size_t> one_dead =
      assign_owners(3, {true, false, true});
  EXPECT_EQ(one_dead[0], 0u);
  EXPECT_EQ(one_dead[2], 2u);
  EXPECT_EQ(one_dead[1], 0u);  // First survivor in round-robin order.
  // Two dead, one survivor: everything lands on it.
  EXPECT_EQ(assign_owners(3, {false, true, false}),
            (std::vector<std::size_t>{1, 1, 1}));
  // Dead slices spread round-robin over multiple survivors.
  const std::vector<std::size_t> spread =
      assign_owners(4, {true, false, false, true});
  EXPECT_EQ(spread[1], 0u);
  EXPECT_EQ(spread[2], 3u);
  EXPECT_THROW(assign_owners(2, {false, false}), std::invalid_argument);
  EXPECT_THROW(assign_owners(2, {true}), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Bit-vector wire codec
// --------------------------------------------------------------------------

TEST(BitCodec, RoundTripsAndRejectsGarbage) {
  const std::vector<std::uint64_t> words{0x0123456789abcdefULL, 0, ~0ULL};
  EXPECT_EQ(service::decode_bits(service::encode_bits(words)), words);
  EXPECT_TRUE(service::encode_bits({}).empty());
  EXPECT_THROW(service::decode_bits("abc"), std::invalid_argument);
  EXPECT_THROW(service::decode_bits("000000000000000Z"),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// In-process worker fleet
// --------------------------------------------------------------------------

constexpr std::size_t kRuns = 25;

service::WorkloadKey test_key() {
  service::WorkloadKey key;
  key.nodes = 30;
  key.links = 60;
  key.candidate_paths = 40;
  key.seed = 3;
  key.intensity = 5.0;
  return key;
}

std::string key_params() {
  return "nodes=30 links=60 paths=40 seed=3 intensity=5 runs=" +
         std::to_string(kRuns);
}

/// N loopback worker processes' worth of TcpServers, each on its own
/// ephemeral port with its own reader threads — the full wire path, one
/// process.
class Fleet {
 public:
  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      auto worker = std::make_unique<Worker>();
      worker->server = std::make_unique<service::TcpServer>(
          service::ServerConfig{.port = 0,
                                .threads = 2,
                                .cache_capacity = 2,
                                .request_timeout_s = 120.0});
      worker->port = worker->server->port();
      worker->runner = std::thread(
          [srv = worker->server.get()] { srv->run(); });
      workers_.push_back(std::move(worker));
    }
  }

  ~Fleet() {
    for (std::size_t i = 0; i < workers_.size(); ++i) kill(i);
  }

  std::vector<WorkerEndpoint> endpoints(
      std::vector<double> weights = {}) const {
    std::vector<WorkerEndpoint> eps;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerEndpoint ep;
      ep.port = workers_[i]->port;
      ep.weight = i < weights.size() ? weights[i] : 1.0;
      eps.push_back(ep);
    }
    return eps;
  }

  /// Stops worker `i` for good and destroys the server, so the listen fd
  /// closes and reconnects are *refused* — exactly like a killed process.
  /// (Merely stopping the server would leave the kernel accept queue
  /// open: a blackhole that costs a full reply deadline per failover.)
  /// Idempotent.
  void kill(std::size_t i) {
    Worker& w = *workers_[i];
    if (w.stopped) return;
    w.stopped = true;
    w.server->stop();
    w.runner.join();
    w.server.reset();
  }

 private:
  struct Worker {
    std::unique_ptr<service::TcpServer> server;
    std::uint16_t port = 0;
    std::thread runner;
    bool stopped = false;
  };
  std::vector<std::unique_ptr<Worker>> workers_;
};

CoordinatorConfig fast_config() {
  CoordinatorConfig config;
  config.runs = kRuns;
  config.rpc.connect_timeout_s = 2.0;
  config.rpc.reply_timeout_s = 30.0;
  config.rpc.retries = 1;
  config.rpc.backoff_s = 0.01;
  return config;
}

double budget_for(const exp::Workload& w, double frac) {
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return frac * w.costs.subset_cost(*w.system, all);
}

// --------------------------------------------------------------------------
// Merge determinism
// --------------------------------------------------------------------------

TEST(Cluster, EvaluateBitwiseMatchesSingleNodeAcrossWorkerCounts) {
  for (const std::size_t worker_count : {1u, 2u, 4u}) {
    Fleet fleet(worker_count);
    Coordinator coord(test_key(), fleet.endpoints(), fast_config());
    for (const service::Response& r : coord.hello()) {
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.at("worker"), "1");
    }
    const core::KernelErEngine& engine = coord.engine();
    ASSERT_EQ(engine.scenario_count(), kRuns);

    const std::size_t paths = coord.workload().workload.system->path_count();
    std::vector<std::size_t> all(paths);
    std::iota(all.begin(), all.end(), std::size_t{0});
    const std::vector<std::vector<std::size_t>> subsets{
        {0}, {5, 10, 15}, {paths - 1, 0, paths / 2}, all};
    for (const auto& subset : subsets) {
      EXPECT_EQ(coord.evaluate(subset), engine.evaluate(subset))
          << worker_count << " workers";
    }
    EXPECT_EQ(coord.failovers(), 0u);
    EXPECT_EQ(coord.alive_workers(), worker_count);
  }
}

TEST(Cluster, UnevenWeightsStillMergeBitwise) {
  Fleet fleet(2);
  Coordinator coord(test_key(), fleet.endpoints({1.0, 3.0}), fast_config());
  ASSERT_EQ(coord.slices()[0].size() + coord.slices()[1].size(), kRuns);
  EXPECT_LT(coord.slices()[0].size(), coord.slices()[1].size());
  const core::KernelErEngine& engine = coord.engine();
  EXPECT_EQ(coord.evaluate({0, 1, 2, 3}), engine.evaluate({0, 1, 2, 3}));
}

TEST(Cluster, SelectBitwiseMatchesSingleNode) {
  Fleet fleet(2);
  Coordinator coord(test_key(), fleet.endpoints(), fast_config());
  const exp::Workload& w = coord.workload().workload;
  for (const double frac : {0.15, 0.3}) {
    const double budget = budget_for(w, frac);
    core::RomeStats cluster_stats;
    const core::Selection sel = coord.select(budget, &cluster_stats);
    const core::Selection local =
        core::rome(*w.system, w.costs, budget, coord.engine());
    ASSERT_FALSE(sel.paths.empty());
    EXPECT_EQ(sel.paths, local.paths);
    EXPECT_EQ(sel.cost, local.cost);
    EXPECT_EQ(sel.objective, local.objective);  // Bitwise.
    EXPECT_GT(cluster_stats.gain_evaluations, 0u);
  }
  EXPECT_EQ(coord.failovers(), 0u);
}

// --------------------------------------------------------------------------
// Failover
// --------------------------------------------------------------------------

TEST(Cluster, WorkerKilledDuringGainSweepDoesNotChangeSelection) {
  Fleet fleet(2);
  Coordinator coord(test_key(), fleet.endpoints(), fast_config());
  const exp::Workload& w = coord.workload().workload;
  const double budget = budget_for(w, 0.3);

  // Kill worker 1 at the 13th sweep fan-out — deterministically inside
  // the best-single gain sweep, while its sessions are live.
  std::atomic<bool> killed{false};
  coord.set_fault_hook([&](std::size_t op) {
    if (op == 12 && !killed.exchange(true)) fleet.kill(1);
  });
  const core::Selection sel = coord.select(budget);
  ASSERT_TRUE(killed.load());

  const core::Selection local =
      core::rome(*w.system, w.costs, budget, coord.engine());
  EXPECT_EQ(sel.paths, local.paths);
  EXPECT_EQ(sel.cost, local.cost);
  EXPECT_EQ(sel.objective, local.objective);  // Bitwise despite the kill.
  EXPECT_GE(coord.failovers(), 1u);
  EXPECT_EQ(coord.alive_workers(), 1u);
}

TEST(Cluster, WorkerKilledMidGreedyReplaysCommittedSelection) {
  Fleet fleet(2);
  Coordinator coord(test_key(), fleet.endpoints(), fast_config());
  const exp::Workload& w = coord.workload().workload;
  const double budget = budget_for(w, 0.3);

  // Late kill: deep into the greedy phase, after paths have been
  // committed — the inheriting worker must rebuild the session by
  // replaying the committed selection to stay bit-exact.
  std::atomic<bool> killed{false};
  coord.set_fault_hook([&](std::size_t op) {
    if (op == 95 && !killed.exchange(true)) fleet.kill(0);
  });
  const core::Selection sel = coord.select(budget);
  ASSERT_TRUE(killed.load());

  const core::Selection local =
      core::rome(*w.system, w.costs, budget, coord.engine());
  EXPECT_EQ(sel.paths, local.paths);
  EXPECT_EQ(sel.objective, local.objective);
  EXPECT_GE(coord.failovers(), 1u);
  EXPECT_EQ(coord.alive_workers(), 1u);

  // The survivor keeps answering: a post-failover evaluate is still the
  // single-node answer.
  EXPECT_EQ(coord.evaluate(sel.paths), coord.engine().evaluate(sel.paths));
}

TEST(Cluster, EvaluateFailsOverAfterWorkerDeath) {
  Fleet fleet(3);
  Coordinator coord(test_key(), fleet.endpoints(), fast_config());
  const core::KernelErEngine& engine = coord.engine();
  EXPECT_EQ(coord.evaluate({0, 1, 2}), engine.evaluate({0, 1, 2}));
  fleet.kill(1);
  EXPECT_EQ(coord.evaluate({0, 1, 2}), engine.evaluate({0, 1, 2}));
  EXPECT_EQ(coord.evaluate({3, 4}), engine.evaluate({3, 4}));
  EXPECT_GE(coord.failovers(), 1u);
  EXPECT_EQ(coord.alive_workers(), 2u);
  // Slice 1 now belongs to a survivor; slices 0 and 2 stayed home.
  EXPECT_NE(coord.owner_of(1), 1u);
  EXPECT_EQ(coord.owner_of(0), 0u);
  EXPECT_EQ(coord.owner_of(2), 2u);
}

TEST(Cluster, AllWorkersDeadThrows) {
  Fleet fleet(2);
  Coordinator coord(test_key(), fleet.endpoints(), fast_config());
  EXPECT_EQ(coord.evaluate({0}), coord.engine().evaluate({0}));
  fleet.kill(0);
  fleet.kill(1);
  EXPECT_THROW((void)coord.evaluate({0, 1}), std::runtime_error);
  EXPECT_EQ(coord.alive_workers(), 0u);
}

TEST(Cluster, HelloReportsUnreachableWorkersAndFailsThemOver) {
  Fleet fleet(2);
  std::vector<WorkerEndpoint> eps = fleet.endpoints();
  fleet.kill(1);
  CoordinatorConfig config = fast_config();
  config.rpc.retries = 0;
  Coordinator coord(test_key(), std::move(eps), config);
  const std::vector<service::Response> hellos = coord.hello();
  ASSERT_EQ(hellos.size(), 2u);
  EXPECT_TRUE(hellos[0].ok) << hellos[0].error;
  EXPECT_FALSE(hellos[1].ok);
  EXPECT_EQ(coord.alive_workers(), 1u);
  // The dead worker's slice already failed over at hello time.
  EXPECT_EQ(coord.owner_of(1), 0u);
  EXPECT_EQ(coord.evaluate({0, 1}), coord.engine().evaluate({0, 1}));
}

TEST(Cluster, HeartbeatMonitorPrunesDeadWorker) {
  Fleet fleet(2);
  CoordinatorConfig config = fast_config();
  config.heartbeat_interval_s = 0.03;
  config.heartbeat_deadline_s = 0.5;
  config.heartbeat_misses = 2;
  Coordinator coord(test_key(), fleet.endpoints(), config);
  ASSERT_TRUE(coord.hello()[1].ok);
  coord.start_heartbeats();
  fleet.kill(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (coord.alive_workers() == 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  coord.stop_heartbeats();
  EXPECT_EQ(coord.alive_workers(), 1u);
  EXPECT_GE(coord.failovers(), 1u);
  // Detection happened in the background; the next request needs no
  // inline transport failure to route around the corpse.
  EXPECT_EQ(coord.evaluate({0, 1, 2}), coord.engine().evaluate({0, 1, 2}));
}

// --------------------------------------------------------------------------
// Shard verbs on the wire
// --------------------------------------------------------------------------

TEST(ClusterVerbs, ShardEvalEqualsEngineSliceRanks) {
  Fleet fleet(1);
  service::WorkloadCache cache(1);
  const auto cw = cache.get(test_key());
  const core::KernelErEngine& engine = cw->kernel_engine(kRuns);

  service::TcpClient client("127.0.0.1", fleet.endpoints()[0].port, 30.0);
  const service::Response r = service::parse_response(client.call_line(
      "shard-eval " + key_params() + " subset=0,1,2,7 begin=5 end=20"));
  ASSERT_TRUE(r.ok) << r.error;
  const std::vector<std::size_t> ranks =
      engine.slice_ranks({0, 1, 2, 7}, 5, 20);
  std::string expected;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) expected += ',';
    expected += std::to_string(ranks[i]);
  }
  EXPECT_EQ(r.at("ranks"), expected);
  EXPECT_EQ(r.at("begin"), "5");
  EXPECT_EQ(r.at("end"), "20");

  // Bad ranges are application errors, not hangs.
  EXPECT_FALSE(service::parse_response(client.call_line(
                   "shard-eval " + key_params() + " subset=0 begin=9 end=4"))
                   .ok);
  EXPECT_FALSE(
      service::parse_response(
          client.call_line("shard-eval " + key_params() +
                           " subset=0 begin=0 end=9999"))
          .ok);
}

TEST(ClusterVerbs, SweepAddIsIdempotentAndReplaysCommitted) {
  Fleet fleet(1);
  service::WorkloadCache cache(1);
  const auto cw = cache.get(test_key());
  const core::KernelErEngine& engine = cw->kernel_engine(kRuns);

  // Local twin of the worker's session.
  const auto twin = engine.make_shard_accumulator(0, kRuns);

  service::TcpClient client("127.0.0.1", fleet.endpoints()[0].port, 30.0);
  const std::string slice = " begin=0 end=" + std::to_string(kRuns);
  ASSERT_TRUE(service::parse_response(
                  client.call_line("shard-sweep sweep=s1 op=init" + slice +
                                   " " + key_params()))
                  .ok);

  const service::Response probe = service::parse_response(
      client.call_line("shard-sweep sweep=s1 op=probe path=3" + slice));
  ASSERT_TRUE(probe.ok) << probe.error;
  EXPECT_EQ(probe.at("bits"), service::encode_bits(twin->probe(3)));

  const service::Response add = service::parse_response(
      client.call_line("shard-sweep sweep=s1 op=add path=3" + slice));
  ASSERT_TRUE(add.ok) << add.error;
  EXPECT_EQ(add.at("bits"), service::encode_bits(twin->add(3)));

  // A retried add must return the memoized bits, not re-commit.
  const service::Response again = service::parse_response(
      client.call_line("shard-sweep sweep=s1 op=add path=3" + slice));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.at("bits"), add.at("bits"));

  const service::Response probe2 = service::parse_response(
      client.call_line("shard-sweep sweep=s1 op=probe path=5" + slice));
  ASSERT_TRUE(probe2.ok) << probe2.error;
  EXPECT_EQ(probe2.at("bits"), service::encode_bits(twin->probe(5)));

  // Failover replay: a fresh session initialized with committed=3 must
  // answer exactly like the original session.
  const service::Response replay = service::parse_response(
      client.call_line("shard-sweep sweep=s2 op=init committed=3" + slice +
                       " " + key_params()));
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.at("committed"), "1");
  const service::Response probe3 = service::parse_response(
      client.call_line("shard-sweep sweep=s2 op=probe path=5" + slice));
  ASSERT_TRUE(probe3.ok) << probe3.error;
  EXPECT_EQ(probe3.at("bits"), probe2.at("bits"));

  // Unknown sessions and ops are structured errors.
  EXPECT_FALSE(service::parse_response(
                   client.call_line("shard-sweep sweep=nope op=probe path=1" +
                                    slice))
                   .ok);
  EXPECT_FALSE(service::parse_response(
                   client.call_line("shard-sweep sweep=s1 op=warp path=1" +
                                    slice))
                   .ok);

  // end is idempotent too.
  EXPECT_EQ(service::parse_response(
                client.call_line("shard-sweep sweep=s1 op=end" + slice))
                .at("ended"),
            "1");
  EXPECT_EQ(service::parse_response(
                client.call_line("shard-sweep sweep=s1 op=end" + slice))
                .at("ended"),
            "0");
}

// --------------------------------------------------------------------------
// Client deadlines and bounded retry
// --------------------------------------------------------------------------

/// A listener that accepts connections and never replies — the blackholed
/// server a read deadline exists for.
class SilentListener {
 public:
  SilentListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, 4) != 0) {
      throw std::runtime_error("SilentListener: bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] {
      while (true) {
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) return;  // Listener closed.
        accepted_.push_back(conn);
      }
    });
  }

  ~SilentListener() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    acceptor_.join();
    for (const int conn : accepted_) ::close(conn);
  }

  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<int> accepted_;
};

TEST(TcpClientDeadlines, ReplyTimeoutTriggersBoundedRetry) {
  SilentListener listener;
  service::ClientOptions options;
  options.connect_timeout_s = 2.0;
  options.reply_timeout_s = 0.2;
  options.retries = 1;
  options.backoff_s = 0.01;
  service::TcpClient client("127.0.0.1", listener.port(), options);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.call_line("ping"), std::runtime_error);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Two bounded attempts, not a hang: well under the no-deadline default.
  EXPECT_LT(elapsed, 5.0);
  EXPECT_GE(elapsed, 0.2);             // At least one full reply deadline.
  EXPECT_EQ(client.reconnects(), 1u);  // Exactly the configured retry.
}

TEST(TcpClientDeadlines, ConnectRefusedExhaustsRetriesQuickly) {
  // Grab a loopback port that is then closed again: connecting must be
  // refused, retried `retries` times, and thrown — never parked in the
  // kernel's minutes-long connect timeout.
  std::uint16_t dead_port = 0;
  {
    SilentListener probe;
    dead_port = probe.port();
  }
  service::ClientOptions options;
  options.connect_timeout_s = 0.5;
  options.reply_timeout_s = 0.5;
  options.retries = 2;
  options.backoff_s = 0.01;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(service::TcpClient("127.0.0.1", dead_port, options),
               std::runtime_error);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5.0);
}

TEST(ClusterClient, CallAfterMarkDeadThrowsTransportError) {
  Fleet fleet(1);
  ClusterClient client(fleet.endpoints(), service::ClientOptions{});
  service::Request ping;
  ping.type = service::RequestType::kPing;
  EXPECT_TRUE(client.call(0, ping).ok);
  EXPECT_TRUE(client.heartbeat(0, 2.0));
  client.mark_dead(0);
  EXPECT_FALSE(client.alive(0));
  EXPECT_EQ(client.alive_count(), 0u);
  EXPECT_THROW((void)client.call(0, ping), TransportError);
  EXPECT_FALSE(client.heartbeat(0, 0.5));
}

}  // namespace
}  // namespace rnt::cluster
