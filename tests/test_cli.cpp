// Tests for the rnt_cli subcommands, driven through the testable command
// layer with captured output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli_commands.h"
#include "util/flags.h"

namespace rnt::cli {
namespace {

/// Builds Flags from a brace list of c-string flags.
Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "test");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(CliTopology, PrintsStatsForCalibratedAs) {
  auto flags = make_flags({"--as", "AS1755", "--seed", "3"});
  std::ostringstream out;
  EXPECT_EQ(cmd_topology(flags, out), 0);
  const std::string s = out.str();
  EXPECT_NE(s.find("nodes"), std::string::npos);
  EXPECT_NE(s.find("87"), std::string::npos);
  EXPECT_NE(s.find("161"), std::string::npos);
  EXPECT_NE(s.find("connected"), std::string::npos);
  EXPECT_NO_THROW(flags.finish());
}

TEST(CliTopology, SavesAndReloadsEdgeList) {
  const std::string path = "/tmp/rnt_cli_test_topology.edges";
  {
    auto flags =
        make_flags({"--nodes", "20", "--links", "30", "--output",
                    path.c_str()});
    std::ostringstream out;
    EXPECT_EQ(cmd_topology(flags, out), 0);
    EXPECT_NE(out.str().find("wrote"), std::string::npos);
  }
  {
    auto flags = make_flags({"--input", path.c_str()});
    std::ostringstream out;
    EXPECT_EQ(cmd_topology(flags, out), 0);
    EXPECT_NE(out.str().find("20"), std::string::npos);
    EXPECT_NE(out.str().find("30"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CliSelect, RunsEachAlgorithm) {
  for (const char* algorithm :
       {"prob-rome", "monte-rome", "select-path", "mat-rome"}) {
    auto flags = make_flags({"--nodes", "30", "--links", "60", "--paths",
                             "40", "--algorithm", algorithm,
                             "--budget-frac", "0.2"});
    std::ostringstream out;
    EXPECT_EQ(cmd_select(flags, out), 0) << algorithm;
    EXPECT_NE(out.str().find("selected"), std::string::npos) << algorithm;
    EXPECT_NE(out.str().find("availability"), std::string::npos);
  }
}

TEST(CliSelect, RejectsUnknownAlgorithm) {
  auto flags = make_flags({"--nodes", "30", "--links", "60", "--paths", "20",
                           "--algorithm", "magic"});
  std::ostringstream out;
  EXPECT_THROW(cmd_select(flags, out), std::invalid_argument);
}

TEST(CliEvaluate, ReportsMetrics) {
  auto flags = make_flags({"--nodes", "30", "--links", "60", "--paths", "40",
                           "--budget-frac", "0.2", "--scenarios", "50",
                           "--identifiability"});
  std::ostringstream out;
  EXPECT_EQ(cmd_evaluate(flags, out), 0);
  const std::string s = out.str();
  EXPECT_NE(s.find("rank under failures (mean)"), std::string::npos);
  EXPECT_NE(s.find("identifiable links (mean)"), std::string::npos);
}

TEST(CliLearn, RunsEachLearner) {
  for (const char* learner : {"lsr", "epsilon-greedy", "thompson"}) {
    auto flags = make_flags({"--nodes", "25", "--links", "50", "--paths",
                             "20", "--epochs", "40", "--learner", learner,
                             "--budget-frac", "0.3"});
    std::ostringstream out;
    EXPECT_EQ(cmd_learn(flags, out), 0) << learner;
    EXPECT_NE(out.str().find("learned selection expected rank"),
              std::string::npos)
        << learner;
  }
}

TEST(CliLearn, RejectsUnknownLearner) {
  auto flags = make_flags({"--nodes", "25", "--links", "50", "--paths", "20",
                           "--learner", "psychic"});
  std::ostringstream out;
  EXPECT_THROW(cmd_learn(flags, out), std::invalid_argument);
}

TEST(CliLocalize, ReportsScore) {
  auto flags = make_flags({"--nodes", "30", "--links", "60", "--paths", "40",
                           "--budget-frac", "0.3", "--scenarios", "60"});
  std::ostringstream out;
  EXPECT_EQ(cmd_localize(flags, out), 0);
  const std::string s = out.str();
  EXPECT_NE(s.find("localized exactly"), std::string::npos);
  EXPECT_NE(s.find("invisible"), std::string::npos);
}

TEST(CliPipeline, ReportsAdaptiveRunAndSavesSeries) {
  const std::string series = "/tmp/rnt_cli_test_pipeline.csv";
  auto flags = make_flags({"--nodes", "30", "--links", "60", "--paths", "60",
                           "--segment-epochs", "10", "--segments", "2,8",
                           "--policy", "adaptive", "--seed", "5",
                           "--series", series.c_str()});
  std::ostringstream out;
  EXPECT_EQ(cmd_pipeline(flags, out), 0);
  const std::string s = out.str();
  EXPECT_NE(s.find("epochs"), std::string::npos);
  EXPECT_NE(s.find("re-plans"), std::string::npos);
  EXPECT_NE(s.find("cumulative surviving rank"), std::string::npos);
  std::ifstream in(series);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("rank"), std::string::npos);
  std::remove(series.c_str());
}

// The acceptance bar: the same seed replays the same trace through the
// same pipeline — byte-identical output, twice.
TEST(CliPipeline, OutputIsDeterministicForASeed) {
  const auto run = [] {
    auto flags =
        make_flags({"--nodes", "30", "--links", "60", "--paths", "60",
                    "--segment-epochs", "10", "--segments", "2,8",
                    "--policy", "adaptive", "--seed", "7"});
    std::ostringstream out;
    EXPECT_EQ(cmd_pipeline(flags, out), 0);
    return out.str();
  };
  EXPECT_EQ(run(), run());
}

TEST(CliPipeline, RejectsBadPolicyAndSegments) {
  {
    auto flags = make_flags({"--nodes", "30", "--links", "60", "--paths",
                             "40", "--policy", "psychic"});
    std::ostringstream out;
    EXPECT_THROW(cmd_pipeline(flags, out), std::invalid_argument);
  }
  {
    auto flags = make_flags({"--nodes", "30", "--links", "60", "--paths",
                             "40", "--segments", "2,-1"});
    std::ostringstream out;
    EXPECT_THROW(cmd_pipeline(flags, out), std::invalid_argument);
  }
  {
    auto flags = make_flags({"--nodes", "30", "--links", "60", "--paths",
                             "40", "--segment-epochs", "0"});
    std::ostringstream out;
    EXPECT_THROW(cmd_pipeline(flags, out), std::invalid_argument);
  }
}

TEST(CliDispatch, UsageAndUnknownCommand) {
  {
    std::ostringstream out;
    const char* argv[] = {"rnt_cli"};
    EXPECT_EQ(dispatch(1, const_cast<char**>(argv), out), 1);
    EXPECT_NE(out.str().find("usage:"), std::string::npos);
  }
  {
    std::ostringstream out;
    const char* argv[] = {"rnt_cli", "help"};
    EXPECT_EQ(dispatch(2, const_cast<char**>(argv), out), 0);
  }
  {
    std::ostringstream out;
    const char* argv[] = {"rnt_cli", "frobnicate"};
    EXPECT_EQ(dispatch(2, const_cast<char**>(argv), out), 1);
    EXPECT_NE(out.str().find("unknown command"), std::string::npos);
  }
}

TEST(CliDispatch, RunsFullCommandLine) {
  std::ostringstream out;
  const char* argv[] = {"rnt_cli", "topology", "--nodes", "15",
                        "--links", "25"};
  EXPECT_EQ(dispatch(6, const_cast<char**>(argv), out), 0);
  EXPECT_NE(out.str().find("15"), std::string::npos);
}

TEST(CliDispatch, UnknownFlagFailsLoudly) {
  std::ostringstream out;
  const char* argv[] = {"rnt_cli", "topology", "--oops", "1"};
  EXPECT_THROW(dispatch(4, const_cast<char**>(argv), out),
               std::invalid_argument);
}

}  // namespace
}  // namespace rnt::cli
