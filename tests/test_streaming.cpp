// Tests for the sieve-streaming path selector: constraint satisfaction,
// approximation quality vs the offline greedy, order robustness, and
// memory behavior.
#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_rank.h"
#include "core/matrome.h"
#include "core/rome.h"
#include "core/streaming.h"
#include "exp/workload.h"
#include "util/rng.h"

namespace rnt::core {
namespace {

struct World {
  exp::Workload w;
  std::unique_ptr<ProbBoundEr> engine;
  explicit World(std::uint64_t seed, std::size_t paths = 80)
      : w(exp::make_custom_workload(40, 80, paths, seed, 5.0)) {
    engine = std::make_unique<ProbBoundEr>(*w.system, *w.failures);
  }
  std::vector<std::size_t> order() const {
    std::vector<std::size_t> o(w.system->path_count());
    std::iota(o.begin(), o.end(), std::size_t{0});
    return o;
  }
};

TEST(Streaming, ValidatesConfig) {
  World world(1);
  EXPECT_THROW(StreamingSelector(*world.engine, {.max_paths = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      StreamingSelector(*world.engine, {.max_paths = 5, .epsilon = 0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      StreamingSelector(*world.engine, {.max_paths = 5, .epsilon = 1.0}),
      std::invalid_argument);
}

TEST(Streaming, RespectsCardinality) {
  World world(2);
  for (std::size_t k : {1u, 3u, 10u}) {
    const auto sel = sieve_stream_select(*world.engine, world.order(),
                                         {.max_paths = k});
    EXPECT_LE(sel.paths.size(), k);
    EXPECT_FALSE(sel.paths.empty());
  }
}

TEST(Streaming, NoDuplicateSelections) {
  World world(3);
  const auto sel = sieve_stream_select(*world.engine, world.order(),
                                       {.max_paths = 10});
  std::vector<std::size_t> sorted = sel.paths;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Streaming, ObjectiveMatchesEngineEvaluation) {
  World world(4);
  const auto sel = sieve_stream_select(*world.engine, world.order(),
                                       {.max_paths = 8});
  EXPECT_NEAR(sel.objective, world.engine->evaluate(sel.paths), 1e-9);
}

TEST(Streaming, WithinHalfOfOfflineGreedy) {
  // Sieve-streaming guarantees (1/2 - eps) of OPT; offline greedy is
  // >= (1 - 1/e) OPT, so streaming >= ~0.52 * greedy for modest eps.
  // Check with margin across seeds and arrival orders.
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    World world(seed);
    const std::size_t k = 8;
    const auto greedy = rome(*world.w.system, tomo::CostModel::unit(),
                             static_cast<double>(k), *world.engine);
    Rng rng(seed);
    auto order = world.order();
    rng.shuffle(order);
    const auto streamed = sieve_stream_select(*world.engine, order,
                                              {.max_paths = k, .epsilon = 0.05});
    const double greedy_value = world.engine->evaluate(greedy.paths);
    const double stream_value = world.engine->evaluate(streamed.paths);
    EXPECT_GE(stream_value, 0.5 * greedy_value) << "seed " << seed;
  }
}

TEST(Streaming, SingleSlotPicksNearBestSingleton) {
  World world(20);
  double best_singleton = 0.0;
  for (std::size_t q : world.order()) {
    best_singleton = std::max(best_singleton, world.engine->evaluate({q}));
  }
  const auto sel = sieve_stream_select(*world.engine, world.order(),
                                       {.max_paths = 1, .epsilon = 0.05});
  ASSERT_EQ(sel.paths.size(), 1u);
  EXPECT_GE(sel.objective, 0.45 * best_singleton);
}

TEST(Streaming, OfferReportsKeeps) {
  World world(21);
  StreamingSelector selector(*world.engine, {.max_paths = 5});
  // The very first offered path must be kept by some sieve.
  EXPECT_TRUE(selector.offer(0));
  EXPECT_EQ(selector.offered(), 1u);
  EXPECT_GT(selector.sieve_count(), 0u);
}

TEST(Streaming, MemoryBoundedSieves) {
  World world(22);
  StreamingSelector selector(*world.engine, {.max_paths = 6, .epsilon = 0.1});
  for (std::size_t q : world.order()) selector.offer(q);
  // Sieve count ~ log_{1+eps}(2k) plus the retired-window slack.
  EXPECT_LT(selector.sieve_count(), 120u);
}

TEST(Streaming, IncrementalSelectionImproves) {
  World world(23);
  StreamingSelector selector(*world.engine, {.max_paths = 10});
  double prev = 0.0;
  std::size_t count = 0;
  for (std::size_t q : world.order()) {
    selector.offer(q);
    if (++count % 20 == 0) {
      const double now = selector.selection().objective;
      EXPECT_GE(now + 1e-9, prev);
      prev = now;
    }
  }
}

TEST(Streaming, LowAvailabilityPathsStillSelected) {
  // Singleton ER values well below 1 must still be sieved (the threshold
  // grid extends below 1): use an intense failure model so every path's
  // availability is small.
  exp::Workload w = exp::make_custom_workload(40, 80, 60, 31, 30.0);
  ProbBoundEr engine(*w.system, *w.failures);
  double best_singleton = 0.0;
  std::vector<std::size_t> order(w.system->path_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t q : order) {
    best_singleton = std::max(best_singleton, engine.evaluate({q}));
  }
  ASSERT_LT(best_singleton, 1.0);  // The regime under test.
  const auto sel =
      sieve_stream_select(engine, order, {.max_paths = 6, .epsilon = 0.1});
  ASSERT_FALSE(sel.paths.empty());
  EXPECT_GE(sel.objective, 0.45 * best_singleton);
  // With 6 slots the streaming value should comfortably exceed the best
  // singleton alone.
  EXPECT_GT(sel.objective, best_singleton);
}

TEST(Streaming, SieveCountHonorsKLogKOverEpsilonBound) {
  // The sieve analysis promises O(k log(k)/epsilon) memory.  The active
  // grid holds (1+eps)^i in [m/(1+eps), 2km(1+eps)], i.e. at most
  // log_{1+eps}(2k) + 3 thresholds, and each refresh retires emptied
  // out-of-window sieves — only sieves holding kept paths may linger.
  // Pin the explicit bound (grid size plus k lingering sieves: a kept
  // path entered at most one sieve per offer) for several (k, eps).
  World world(41);
  for (const std::size_t k : {3u, 6u, 12u}) {
    for (const double eps : {0.05, 0.1, 0.3}) {
      StreamingSelector selector(*world.engine,
                                 {.max_paths = k, .epsilon = eps});
      for (std::size_t q : world.order()) selector.offer(q);
      const double grid =
          std::log(2.0 * static_cast<double>(k)) / std::log1p(eps) + 3.0;
      const auto bound =
          static_cast<std::size_t>(std::ceil(grid)) + 2 * k;
      EXPECT_LE(selector.sieve_count(), bound)
          << "k=" << k << " eps=" << eps;
    }
  }
  // And the 1/epsilon scaling is real: a coarser grid uses fewer sieves.
  StreamingSelector fine(*world.engine, {.max_paths = 6, .epsilon = 0.05});
  StreamingSelector coarse(*world.engine, {.max_paths = 6, .epsilon = 0.4});
  for (std::size_t q : world.order()) {
    fine.offer(q);
    coarse.offer(q);
  }
  EXPECT_LT(coarse.sieve_count(), fine.sieve_count());
}

TEST(Streaming, RefreshNeverDropsKeptPath) {
  // Adversarial arrival order: ascending singleton ER, so the best
  // singleton m grows repeatedly and every growth refreshes the grid.
  // Paths kept under early (low) thresholds sit in sieves that fall out
  // of the active window — those sieves must be retained, because a
  // streaming selector cannot revisit a discarded path.
  World world(42);
  std::vector<std::size_t> order = world.order();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return world.engine->evaluate({a}) < world.engine->evaluate({b});
  });

  StreamingSelector selector(*world.engine, {.max_paths = 4, .epsilon = 0.2});
  std::vector<std::size_t> committed;  // kept_paths() after the last offer.
  bool saw_growth = false;
  for (std::size_t q : order) {
    selector.offer(q);
    const std::vector<std::size_t> now = selector.kept_paths();
    // Every previously committed path is still committed.
    EXPECT_TRUE(std::includes(now.begin(), now.end(), committed.begin(),
                              committed.end()))
        << "a kept path vanished after offering " << q;
    saw_growth = saw_growth || now.size() > committed.size();
    committed = now;
  }
  ASSERT_TRUE(saw_growth);  // The invariant was actually exercised.
  // In particular the very first committed path survived every refresh.
  EXPECT_FALSE(committed.empty());
}

}  // namespace
}  // namespace rnt::core
