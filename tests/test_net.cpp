// The event-loop networking subsystem (src/net) and its service front
// end (service::ReactorServer).
//
// The acceptance property throughout: the reactor front end must be
// observationally identical to the threaded TcpServer — byte-identical
// reply lines for the same request lines — while adding the overload
// behaviour the threaded server cannot express: explicit admission
// shedding (`error overloaded: ...`, never a hung or dropped
// connection), connection caps below RLIMIT_NOFILE, and idle eviction
// of slow-loris clients.  Everything here is deterministic in-process
// loopback: no sleeps standing in for synchronisation, no timing
// assertions tighter than the test's own read deadlines.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "net/framing.h"
#include "net/poller.h"
#include "net/reactor.h"
#include "net/timeout_wheel.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/reactor_server.h"
#include "service/server.h"

namespace rnt {
namespace {

using net::FrameStatus;
using net::LineFramer;
using net::LengthPrefixFramer;
using net::PollBackend;
using net::PollEvent;
using net::TimeoutWheel;
using service::parse_response;
using service::ReactorServer;
using service::ReactorServerConfig;
using service::Response;

// --------------------------------------------------------------------------
// Poller backends
// --------------------------------------------------------------------------
//
// Both backends run the same scenario so the poll(2) fallback stays
// honest against epoll.

std::vector<PollBackend> available_backends() {
#ifdef __linux__
  return {PollBackend::kEpoll, PollBackend::kPoll};
#else
  return {PollBackend::kPoll};
#endif
}

TEST(Poller, PipeReadinessOnEveryBackend) {
  for (const PollBackend backend : available_backends()) {
    auto poller = net::make_poller(backend);
    SCOPED_TRACE(poller->name());
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    std::vector<PollEvent> out;
    poller->add(fds[0], /*want_read=*/true, /*want_write=*/false);
    poller->wait(out, 0);
    EXPECT_TRUE(out.empty()) << "readable before any byte was written";

    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    poller->wait(out, 1000);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].fd, fds[0]);
    EXPECT_TRUE(out[0].readable);
    EXPECT_FALSE(out[0].writable);

    // The write end of a fresh pipe is immediately writable.
    poller->add(fds[1], /*want_read=*/false, /*want_write=*/true);
    poller->wait(out, 1000);
    bool saw_writable = false;
    for (const PollEvent& e : out) {
      if (e.fd == fds[1]) saw_writable = e.writable;
    }
    EXPECT_TRUE(saw_writable);

    // Dropping interest silences a still-ready fd.
    char c;
    ASSERT_EQ(::read(fds[0], &c, 1), 1);
    poller->modify(fds[1], /*want_read=*/false, /*want_write=*/false);
    poller->wait(out, 0);
    EXPECT_TRUE(out.empty());

    poller->remove(fds[0]);
    poller->remove(fds[1]);
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

TEST(Poller, AutoResolvesAndWaitsWithNothingRegistered) {
  auto poller = net::make_poller(PollBackend::kAuto);
  EXPECT_NE(poller->name(), nullptr);
  // An empty interest set must still honour the timeout, not spin or
  // block forever.
  std::vector<PollEvent> out;
  poller->wait(out, 10);
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------------------------
// Framing
// --------------------------------------------------------------------------

TEST(LineFramer, ByteAtATimeArrival) {
  LineFramer framer(64);
  const std::string wire = "ping\n";
  std::string_view frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    framer.append(&wire[i], 1);
    EXPECT_EQ(framer.next_frame(frame), FrameStatus::kNeedMore);
  }
  framer.append(&wire.back(), 1);
  ASSERT_EQ(framer.next_frame(frame), FrameStatus::kFrame);
  EXPECT_EQ(frame, "ping");
  EXPECT_EQ(framer.next_frame(frame), FrameStatus::kNeedMore);
  EXPECT_EQ(framer.buffered_bytes(), 0u);
}

TEST(LineFramer, PipelinedBatchCrStripAndEmptyLineSkip) {
  LineFramer framer(64);
  const std::string wire = "a\r\n\n\r\nbb\nccc\n";
  framer.append(wire.data(), wire.size());
  std::string_view frame;
  ASSERT_EQ(framer.next_frame(frame), FrameStatus::kFrame);
  EXPECT_EQ(frame, "a");  // CR stripped.
  ASSERT_EQ(framer.next_frame(frame), FrameStatus::kFrame);
  EXPECT_EQ(frame, "bb");  // Empty and CR-only lines skipped.
  ASSERT_EQ(framer.next_frame(frame), FrameStatus::kFrame);
  EXPECT_EQ(frame, "ccc");
  EXPECT_EQ(framer.next_frame(frame), FrameStatus::kNeedMore);
}

TEST(LineFramer, OversizedTerminatedLineIsSticky) {
  LineFramer framer(8);
  const std::string wire = std::string(9, 'x') + "\nping\n";
  framer.append(wire.data(), wire.size());
  std::string_view frame;
  EXPECT_EQ(framer.next_frame(frame), FrameStatus::kOversized);
  // Poisoned: even the valid line behind it never comes out.
  EXPECT_EQ(framer.next_frame(frame), FrameStatus::kOversized);
}

TEST(LineFramer, OversizedUnterminatedTailIsDetectedEarly) {
  // A peer streaming a newline-free line past the cap must surface as
  // kOversized without waiting for a terminator (unbounded buffering).
  LineFramer framer(8);
  const std::string wire(9, 'y');
  framer.append(wire.data(), wire.size());
  std::string_view frame;
  EXPECT_EQ(framer.next_frame(frame), FrameStatus::kOversized);
}

TEST(LineFramer, ExactlyCapSizedLineIsFine) {
  LineFramer framer(8);
  const std::string wire = std::string(8, 'z') + "\n";
  framer.append(wire.data(), wire.size());
  std::string_view frame;
  ASSERT_EQ(framer.next_frame(frame), FrameStatus::kFrame);
  EXPECT_EQ(frame, std::string(8, 'z'));
}

TEST(LengthPrefixFramer, RoundTripsAcrossSplitAppends) {
  LengthPrefixFramer framer(1 << 16);
  const std::vector<std::string> payloads{"", "a", std::string(1000, 'q')};
  std::string wire;
  for (const std::string& p : payloads) wire += net::length_prefix_encode(p);

  // Feed the wire in 3-byte slivers so headers and payloads split across
  // appends.
  std::string_view frame;
  std::vector<std::string> decoded;
  for (std::size_t i = 0; i < wire.size(); i += 3) {
    framer.append(wire.data() + i, std::min<std::size_t>(3, wire.size() - i));
    while (framer.next_frame(frame) == FrameStatus::kFrame) {
      decoded.emplace_back(frame);
    }
  }
  EXPECT_EQ(decoded, payloads);
  EXPECT_EQ(framer.buffered_bytes(), 0u);
}

TEST(LengthPrefixFramer, RejectsOversizedDeclaredLengthBeforeBuffering) {
  LengthPrefixFramer framer(16);
  // Header declaring 17 bytes; no payload sent at all.
  const std::string header = net::length_prefix_encode(std::string(17, 'p'))
                                 .substr(0, LengthPrefixFramer::kHeaderBytes);
  framer.append(header.data(), header.size());
  std::string_view frame;
  EXPECT_EQ(framer.next_frame(frame), FrameStatus::kOversized);
  EXPECT_EQ(framer.next_frame(frame), FrameStatus::kOversized);  // Sticky.
}

// --------------------------------------------------------------------------
// Timeout wheel
// --------------------------------------------------------------------------

TEST(TimeoutWheelTest, ExpiresOnlyAfterTheFullAllowance) {
  TimeoutWheel wheel(100);
  wheel.touch(1, 0);
  std::vector<std::uint64_t> expired;
  wheel.expire(50, expired);
  EXPECT_TRUE(expired.empty());
  wheel.expire(99, expired);
  EXPECT_TRUE(expired.empty());
  wheel.expire(100, expired);
  EXPECT_EQ(expired, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(wheel.size(), 0u);
  wheel.expire(500, expired);
  EXPECT_TRUE(expired.empty());  // Expired ids are forgotten, not re-fired.
}

TEST(TimeoutWheelTest, RetouchSupersedesTheOldDeadline) {
  TimeoutWheel wheel(100);
  wheel.touch(1, 0);
  wheel.touch(1, 90);  // Activity: the original deadline (100) is stale.
  std::vector<std::uint64_t> expired;
  wheel.expire(100, expired);
  EXPECT_TRUE(expired.empty());
  wheel.expire(189, expired);
  EXPECT_TRUE(expired.empty());
  wheel.expire(190, expired);
  EXPECT_EQ(expired, (std::vector<std::uint64_t>{1}));
}

TEST(TimeoutWheelTest, EraseForgetsAndLeavesOthersAlone) {
  TimeoutWheel wheel(100);
  wheel.touch(1, 0);
  wheel.touch(2, 0);
  wheel.erase(1);
  EXPECT_EQ(wheel.size(), 1u);
  std::vector<std::uint64_t> expired;
  wheel.expire(100, expired);
  EXPECT_EQ(expired, (std::vector<std::uint64_t>{2}));
}

TEST(TimeoutWheelTest, HugeSweepGapStillCatchesEveryEntry) {
  // A sweep arriving far past every deadline (loop stalled, clock jump)
  // must still expire everything in one bounded pass over kBuckets.
  TimeoutWheel wheel(100);
  for (std::uint64_t id = 1; id <= 40; ++id) wheel.touch(id, id);
  std::vector<std::uint64_t> expired;
  wheel.expire(1'000'000, expired);
  EXPECT_EQ(expired.size(), 40u);
  EXPECT_EQ(wheel.size(), 0u);
}

// --------------------------------------------------------------------------
// Loopback fixtures
// --------------------------------------------------------------------------

/// A raw loopback socket speaking bytes, not the protocol — the
/// adversary's view of the server (same shape as test_service.cpp's).
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw std::runtime_error("RawConn: connect failed");
    }
    // Bound every read so a wedged server fails the test instead of
    // hanging it.
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  ~RawConn() { close(); }

  void send_bytes(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads until '\n' (returned line excludes it) — "" on EOF/timeout.
  std::string read_line() {
    std::string line;
    char c;
    while (true) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n <= 0) return "";
      if (c == '\n') return line;
      line.push_back(c);
    }
  }

  /// Reads exactly `n` bytes (binary-safe) — shorter on EOF/timeout.
  std::string read_exact(std::size_t n) {
    std::string data;
    char buf[512];
    while (data.size() < n) {
      const ssize_t got =
          ::recv(fd_, buf, std::min(sizeof(buf), n - data.size()), 0);
      if (got <= 0) break;
      data.append(buf, static_cast<std::size_t>(got));
    }
    return data;
  }

  /// True when the server closed its end (EOF within the read deadline).
  bool server_closed() {
    char c;
    return ::recv(fd_, &c, 1, 0) == 0;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// A ReactorServer on its own loop thread, stopped and joined on scope
/// exit.
class ReactorFixture {
 public:
  explicit ReactorFixture(ReactorServerConfig config)
      : server_(config), runner_([this] { server_.run(); }) {}

  ~ReactorFixture() {
    server_.stop();
    if (runner_.joinable()) runner_.join();
  }

  ReactorServer& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

 private:
  ReactorServer server_;
  std::thread runner_;
};

// --------------------------------------------------------------------------
// Reactor front end: byte-identical to the threaded server
// --------------------------------------------------------------------------

TEST(ReactorServer, RepliesAreByteIdenticalToThreadedServerOnEveryBackend) {
  // Same request lines, one threaded server, one reactor per backend:
  // every reply line must match byte for byte — success payloads, parse
  // errors, handler errors, the lot.
  service::TcpServer threaded(
      service::ServerConfig{.port = 0, .threads = 2, .cache_capacity = 2});
  std::thread threaded_runner([&threaded] { threaded.run(); });

  const std::vector<std::string> lines{
      "ping",
      "select nodes=30 links=60 paths=30 seed=3 intensity=5 budget-frac=0.3",
      "select nodes=30 links=60 paths=30 seed=3 intensity=5 budgett-frac=0.3",
      "localize-node nodes=20 links=36 paths=24 seed=5 family=node k=2 "
      "scenarios=40",
      "localize-node nodes=20 links=36 paths=24 seed=5 family=warp k=2",
      "warp factor=9",
      "=",
      "select budget",
  };

  std::vector<std::string> expected;
  {
    service::TcpClient client("127.0.0.1", threaded.port(), 30.0);
    for (const std::string& line : lines) {
      expected.push_back(client.call_line(line));
    }
  }
  threaded.stop();
  threaded_runner.join();

  for (const PollBackend backend : available_backends()) {
    ReactorFixture reactor(ReactorServerConfig{
        .threads = 2, .cache_capacity = 2, .backend = backend});
    SCOPED_TRACE(reactor.server().backend_name());
    service::TcpClient client("127.0.0.1", reactor.port(), 30.0);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      EXPECT_EQ(client.call_line(lines[i]), expected[i]) << lines[i];
    }
  }
}

TEST(ReactorServer, ShutdownVerbAnswersThenStopsRun) {
  ReactorServer server(ReactorServerConfig{.threads = 1});
  std::thread runner([&server] { server.run(); });
  {
    service::TcpClient client("127.0.0.1", server.port(), 30.0);
    const Response down = parse_response(client.call_line("shutdown"));
    ASSERT_TRUE(down.ok) << down.error;
    EXPECT_EQ(down.at("shutting-down"), "1");
  }
  runner.join();  // The request stopped run(); joining proves it.
  EXPECT_TRUE(server.stopping());
}

TEST(ReactorServer, StopUnblocksRun) {
  ReactorServer server(ReactorServerConfig{.threads = 1});
  std::thread runner([&server] { server.run(); });
  server.stop();  // What the SIGINT handler does.
  runner.join();
}

// --------------------------------------------------------------------------
// Framing edge cases on the wire
// --------------------------------------------------------------------------

TEST(ReactorServer, ByteAtATimeRequestStillAnswered) {
  ReactorFixture reactor(ReactorServerConfig{.threads = 1});
  RawConn raw(reactor.port());
  for (const char c : std::string("ping\n")) {
    raw.send_bytes(std::string(1, c));
  }
  const std::string reply = raw.read_line();
  ASSERT_FALSE(reply.empty());
  EXPECT_TRUE(parse_response(reply).ok);
}

TEST(ReactorServer, PipelinedRepliesComeBackInRequestOrder) {
  ReactorFixture reactor(ReactorServerConfig{.threads = 2});
  RawConn raw(reactor.port());
  // One write, three requests: ok / error / ok, strictly in order even
  // though the pool may finish them in any order.
  raw.send_bytes("ping\nwarp factor=9\nping\n");
  const Response first = parse_response(raw.read_line());
  const Response second = parse_response(raw.read_line());
  const Response third = parse_response(raw.read_line());
  EXPECT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(second.ok);
  EXPECT_TRUE(third.ok) << third.error;
  // Two of the three frames decoded behind another from the same batch.
  EXPECT_EQ(reactor.server().service().metrics().pipelined_requests,
            2u);
}

TEST(ReactorServer, OversizedTerminatedLineAnsweredThenClosed) {
  ReactorFixture reactor(
      ReactorServerConfig{.threads = 1, .max_line_bytes = 256});
  RawConn raw(reactor.port());
  raw.send_bytes(std::string(300, 'a') + "\n");
  const std::string reply = raw.read_line();
  ASSERT_FALSE(reply.empty()) << "no structured reply before close";
  const Response r = parse_response(reply);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("exceeds 256 bytes"), std::string::npos) << r.error;
  EXPECT_TRUE(raw.server_closed());
}

TEST(ReactorServer, OversizedUnterminatedTailAnsweredThenClosed) {
  ReactorFixture reactor(
      ReactorServerConfig{.threads = 1, .max_line_bytes = 256});
  RawConn raw(reactor.port());
  raw.send_bytes(std::string(300, 'b'));  // No newline, ever.
  const std::string reply = raw.read_line();
  ASSERT_FALSE(reply.empty()) << "unterminated flood was buffered silently";
  EXPECT_NE(parse_response(reply).error.find("exceeds 256 bytes"),
            std::string::npos);
  EXPECT_TRUE(raw.server_closed());
}

TEST(ReactorServer, SlowLorisIsEvictedByTheIdleTimeout) {
  ReactorFixture reactor(
      ReactorServerConfig{.threads = 1, .idle_timeout_ms = 150});
  RawConn raw(reactor.port());
  raw.send_bytes("pin");  // A request that never completes.
  // The wheel evicts at ~150ms + a bucket width; the 5s read deadline
  // bounds the wait, EOF proves the eviction.
  EXPECT_TRUE(raw.server_closed());
  EXPECT_EQ(reactor.server().service().metrics().idle_timeouts, 1u);
}

// --------------------------------------------------------------------------
// Backpressure: admission queue and connection cap
// --------------------------------------------------------------------------

TEST(ReactorServer, AdmissionOverflowShedsInOrderAndKeepsTheConnection) {
  // max_queue=1, one write carrying a slow select plus two pings: the
  // select is admitted, both pings arrive while it is in flight and are
  // shed.  Deterministic: the loop decodes every frame of the batch
  // before pool completions can re-enter it, so in_flight is still 1
  // when the pings are considered (and the single-threaded pool keeps
  // the select running long past the decode anyway).
  ReactorFixture reactor(ReactorServerConfig{.threads = 1, .max_queue = 1});
  RawConn raw(reactor.port());
  raw.send_bytes(
      "select nodes=30 links=60 paths=30 seed=3 intensity=5 budget-frac=0.3\n"
      "ping\nping\n");
  const Response first = parse_response(raw.read_line());
  const Response second = parse_response(raw.read_line());
  const Response third = parse_response(raw.read_line());
  EXPECT_TRUE(first.ok) << first.error;  // The admitted select, in order.
  ASSERT_FALSE(second.ok);
  EXPECT_NE(second.error.find("overloaded"), std::string::npos)
      << second.error;
  ASSERT_FALSE(third.ok);
  EXPECT_NE(third.error.find("overloaded"), std::string::npos);
  EXPECT_EQ(reactor.server().service().metrics().shed_requests,
            2u);

  // Shedding answers the request, it does not punish the connection.
  raw.send_bytes("ping\n");
  EXPECT_TRUE(parse_response(raw.read_line()).ok);
}

TEST(ReactorServer, ConnectionCapShedsWithBannerAndRecovers) {
  ReactorFixture reactor(
      ReactorServerConfig{.threads = 1, .max_connections = 2});
  EXPECT_EQ(reactor.server().connection_cap(), 2u);

  auto a = std::make_unique<RawConn>(reactor.port());
  RawConn b(reactor.port());
  // A ping round trip proves each connection is registered before the
  // third one arrives.
  a->send_bytes("ping\n");
  ASSERT_TRUE(parse_response(a->read_line()).ok);
  b.send_bytes("ping\n");
  ASSERT_TRUE(parse_response(b.read_line()).ok);

  // The third connection gets the structured banner, then EOF.
  RawConn shed(reactor.port());
  const Response banner = parse_response(shed.read_line());
  EXPECT_FALSE(banner.ok);
  EXPECT_NE(banner.error.find("overloaded: connection limit reached"),
            std::string::npos)
      << banner.error;
  EXPECT_TRUE(shed.server_closed());
  EXPECT_EQ(reactor.server().shed_connections(), 1u);
  EXPECT_EQ(reactor.server().service().metrics().shed_connections,
            1u);

  // Closing one admitted connection frees the slot; the loop may take a
  // sweep or two to observe the EOF, so retry under a deadline.
  a.reset();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool recovered = false;
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    RawConn retry(reactor.port());
    retry.send_bytes("ping\n");
    const std::string reply = retry.read_line();
    recovered = !reply.empty() && parse_response(reply).ok;
  }
  EXPECT_TRUE(recovered) << "freed connection slot was never reusable";
}

TEST(ReactorServer, DefaultConnectionCapStaysBelowRlimitNofile) {
  ReactorServer server(ReactorServerConfig{.threads = 1});
  rlimit rl{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &rl), 0);
  EXPECT_GT(server.connection_cap(), 0u);
  // Headroom for the listener, wake pipe, emergency fd and workload
  // files: hitting EMFILE in steady state would wedge the acceptor.
  EXPECT_LT(server.connection_cap(), static_cast<std::size_t>(rl.rlim_cur));
}

// --------------------------------------------------------------------------
// Reactor counters in the stats verb
// --------------------------------------------------------------------------

TEST(ReactorServer, StatsVerbSurfacesReactorCountersAndTheyMove) {
  ReactorFixture reactor(ReactorServerConfig{.threads = 2});
  RawConn pipelined(reactor.port());
  pipelined.send_bytes("ping\nping\n");
  ASSERT_TRUE(parse_response(pipelined.read_line()).ok);
  ASSERT_TRUE(parse_response(pipelined.read_line()).ok);

  service::TcpClient client("127.0.0.1", reactor.port(), 30.0);
  const Response stats = parse_response(client.call_line("stats"));
  ASSERT_TRUE(stats.ok) << stats.error;
  // The pipelined RawConn plus this client: the open-connections gauge
  // is refreshed at every accept, so both are visible.
  EXPECT_EQ(stats.at("open-connections"), "2");
  EXPECT_GE(stats.number("pipelined-requests"), 1.0);
  EXPECT_EQ(stats.at("shed-requests"), "0");
  EXPECT_EQ(stats.at("shed-connections"), "0");
  EXPECT_EQ(stats.at("idle-timeouts"), "0");
  // queue-depth is a point-in-time gauge; present is the contract.
  EXPECT_NO_THROW((void)stats.number("queue-depth"));
}

TEST(TcpServerStats, ThreadedServerEmitsTheSameFieldsAsZeros) {
  // Both front ends answer `stats` with the same schema; the threaded
  // server simply never bumps the reactor counters.
  service::TcpServer server(service::ServerConfig{.port = 0, .threads = 1});
  std::thread runner([&server] { server.run(); });
  {
    service::TcpClient client("127.0.0.1", server.port(), 30.0);
    const Response stats = parse_response(client.call_line("stats"));
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_EQ(stats.at("open-connections"), "0");
    EXPECT_EQ(stats.at("queue-depth"), "0");
    EXPECT_EQ(stats.at("shed-requests"), "0");
    EXPECT_EQ(stats.at("shed-connections"), "0");
    EXPECT_EQ(stats.at("idle-timeouts"), "0");
    EXPECT_EQ(stats.at("pipelined-requests"), "0");
  }
  server.stop();
  runner.join();
}

// --------------------------------------------------------------------------
// Blocking TcpClient hardening (peer vanishing mid-reply)
// --------------------------------------------------------------------------

/// A scripted one-shot listener: accepts, reads a line, answers with the
/// given bytes verbatim, closes.  `replies` supplies one script entry per
/// accepted connection.
class ScriptedListener {
 public:
  explicit ScriptedListener(std::vector<std::string> replies)
      : replies_(std::move(replies)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, 4) != 0) {
      throw std::runtime_error("ScriptedListener: bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~ScriptedListener() {
    if (thread_.joinable()) thread_.join();
    if (fd_ >= 0) ::close(fd_);
  }

  std::uint16_t port() const { return port_; }

 private:
  void serve() {
    for (const std::string& reply : replies_) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;
      char buf[256];
      // One request line is enough for the script; ignore its content.
      (void)::recv(conn, buf, sizeof(buf), 0);
      (void)::send(conn, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(conn);
    }
  }

  std::vector<std::string> replies_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST(TcpClientTransport, PeerClosingMidReplyThrowsTransportError) {
  // The server dies after half a reply line: with no retries left the
  // client must surface a TransportError (connection-level), not a
  // timeout and not a silent truncated "reply".
  ScriptedListener listener({"ok pong="});  // No terminating newline.
  service::TcpClient client(
      "127.0.0.1", listener.port(),
      service::ClientOptions{.connect_timeout_s = 5.0,
                             .reply_timeout_s = 5.0,
                             .retries = 0});
  EXPECT_THROW((void)client.call_line("ping"), service::TransportError);
}

TEST(TcpClientTransport, RetryReconnectsAfterMidReplyCloseAndSucceeds) {
  // Same mid-reply close, but with one retry: the client reconnects and
  // the second attempt lands a complete reply.
  ScriptedListener listener({"ok pong=", "ok pong=1\n"});
  service::TcpClient client(
      "127.0.0.1", listener.port(),
      service::ClientOptions{.connect_timeout_s = 5.0,
                             .reply_timeout_s = 5.0,
                             .retries = 1,
                             .backoff_s = 0.01});
  EXPECT_EQ(client.call_line("ping"), "ok pong=1");
  EXPECT_EQ(client.reconnects(), 1u);
}

// --------------------------------------------------------------------------
// The reactor as a reusable subsystem (not just the service front end)
// --------------------------------------------------------------------------

/// A minimal protocol on the length-prefixed codec: every frame comes
/// back reversed.  Exercises the subclass surface end to end without any
/// service machinery.
class ReverseEchoReactor : public net::Reactor {
 public:
  explicit ReverseEchoReactor(net::ReactorConfig config)
      : net::Reactor(config) {}

 private:
  void on_frame(Connection& conn, std::string_view frame,
                bool pipelined) override {
    (void)pipelined;
    std::string reversed(frame.rbegin(), frame.rend());
    send_to(conn, net::length_prefix_encode(reversed));
  }
};

TEST(Reactor, LengthPrefixedSubclassEchoesFramesBack) {
  ReverseEchoReactor reactor(net::ReactorConfig{
      .max_frame_bytes = 1024, .framing = net::FramingMode::kLengthPrefix});
  std::thread runner([&reactor] { reactor.run(); });

  {
    RawConn raw(reactor.port());
    raw.send_bytes(net::length_prefix_encode("hello") +
                   net::length_prefix_encode("ab"));
    const std::string expected =
        net::length_prefix_encode("olleh") + net::length_prefix_encode("ba");
    EXPECT_EQ(raw.read_exact(expected.size()), expected);
  }

  reactor.stop();
  runner.join();
}

// --------------------------------------------------------------------------
// Cluster workers behind the reactor front end
// --------------------------------------------------------------------------

service::WorkloadKey cluster_key() {
  service::WorkloadKey key;
  key.nodes = 30;
  key.links = 60;
  key.candidate_paths = 40;
  key.seed = 3;
  key.intensity = 5.0;
  return key;
}

/// The test_cluster Fleet, with ReactorServer workers: same wire, same
/// verbs, event-loop front end.
class ReactorFleet {
 public:
  explicit ReactorFleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      auto worker = std::make_unique<Worker>();
      worker->server = std::make_unique<ReactorServer>(
          ReactorServerConfig{.port = 0,
                              .threads = 2,
                              .cache_capacity = 2,
                              .request_timeout_s = 120.0});
      worker->port = worker->server->port();
      worker->runner =
          std::thread([srv = worker->server.get()] { srv->run(); });
      workers_.push_back(std::move(worker));
    }
  }

  ~ReactorFleet() {
    for (std::size_t i = 0; i < workers_.size(); ++i) kill(i);
  }

  std::vector<cluster::WorkerEndpoint> endpoints() const {
    std::vector<cluster::WorkerEndpoint> eps;
    for (const auto& w : workers_) {
      cluster::WorkerEndpoint ep;
      ep.port = w->port;
      eps.push_back(ep);
    }
    return eps;
  }

  /// Stops worker `i` for good and destroys the server so reconnects are
  /// refused — a killed process, not a paused one.  Idempotent.
  void kill(std::size_t i) {
    Worker& w = *workers_[i];
    if (w.stopped) return;
    w.stopped = true;
    w.server->stop();
    w.runner.join();
    w.server.reset();
  }

 private:
  struct Worker {
    std::unique_ptr<ReactorServer> server;
    std::uint16_t port = 0;
    std::thread runner;
    bool stopped = false;
  };
  std::vector<std::unique_ptr<Worker>> workers_;
};

TEST(ClusterOverReactor, EvaluateStaysBitwiseIdenticalAndFailsOver) {
  ReactorFleet fleet(2);
  cluster::CoordinatorConfig config;
  config.runs = 10;
  config.rpc.connect_timeout_s = 2.0;
  config.rpc.reply_timeout_s = 30.0;
  config.rpc.retries = 1;
  config.rpc.backoff_s = 0.01;
  cluster::Coordinator coord(cluster_key(), fleet.endpoints(), config);
  for (const Response& r : coord.hello()) {
    ASSERT_TRUE(r.ok) << r.error;
  }

  const core::KernelErEngine& engine = coord.engine();
  const std::size_t paths = coord.workload().workload.system->path_count();
  std::vector<std::size_t> all(paths);
  std::iota(all.begin(), all.end(), std::size_t{0});
  for (const auto& subset : std::vector<std::vector<std::size_t>>{
           {0}, {5, 10, 15}, {paths - 1, 0, paths / 2}, all}) {
    EXPECT_EQ(coord.evaluate(subset), engine.evaluate(subset));
  }
  EXPECT_EQ(coord.failovers(), 0u);

  // Kill one worker: the survivor inherits its slice and the merged
  // value is still the single-node double, bit for bit.
  fleet.kill(1);
  EXPECT_EQ(coord.evaluate({0, 1, 2}), engine.evaluate({0, 1, 2}));
  EXPECT_GE(coord.failovers(), 1u);
  EXPECT_EQ(coord.alive_workers(), 1u);
}

}  // namespace
}  // namespace rnt
