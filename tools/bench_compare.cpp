// Gates a fresh BENCH_*.json against a committed baseline.
//
//   bench_compare --baseline bench/baselines/BENCH_ER.json \
//                 --current BENCH_ER.json \
//                 --tolerance 0.25 \
//                 --require kernel_vs_scenario_evaluate>=5
//
// Only "ratios" are gated: they compare two operations measured in the
// same process on the same machine, so they transfer across hardware up
// to noise — a current ratio more than --tolerance below the baseline is
// a regression (higher is better; all ratios are speedups).  Absolute
// "metrics" (ops/sec, p50/p95) are machine-dependent and printed for
// information only.  --require pins hard floors from the acceptance
// criteria, independent of what the baseline drifted to.
//
// Exit code 0 = all gates pass, 1 = regression / missing ratio / unmet
// floor / malformed input.  docs/BENCHMARKS.md covers re-baselining.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/json.h"
#include "util/table.h"

namespace rnt {
namespace {

struct Requirement {
  std::string ratio;
  double floor = 0.0;
};

/// Parses "name>=X[,name>=Y...]"; throws on anything else.
std::vector<Requirement> parse_requirements(const std::string& spec) {
  std::vector<Requirement> reqs;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const std::size_t pos = item.find(">=");
    if (pos == std::string::npos || pos == 0) {
      throw std::invalid_argument("bad --require clause '" + item +
                                  "' (expected name>=value)");
    }
    Requirement req;
    req.ratio = item.substr(0, pos);
    req.floor = std::stod(item.substr(pos + 2));
    reqs.push_back(req);
  }
  return reqs;
}

int run(Flags& flags) {
  const std::string baseline_path = flags.get_string("baseline", "");
  const std::string current_path = flags.get_string("current", "");
  const double tolerance = flags.get_double("tolerance", 0.25);
  const std::vector<Requirement> requirements =
      parse_requirements(flags.get_string("require", ""));
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "usage: bench_compare --baseline PATH --current PATH"
                 " [--tolerance 0.25] [--require name>=X,...]\n";
    return 1;
  }

  const util::Json baseline = util::Json::parse(util::read_file(baseline_path));
  const util::Json current = util::Json::parse(util::read_file(current_path));
  const std::string base_suite = baseline.at("suite").as_string();
  const std::string cur_suite = current.at("suite").as_string();
  if (base_suite != cur_suite) {
    std::cerr << "FAIL: suite mismatch: baseline '" << base_suite
              << "' vs current '" << cur_suite << "'\n";
    return 1;
  }

  int failures = 0;
  TablePrinter table({"ratio", "baseline", "current", "floor", "status"});
  const util::Json& base_ratios = baseline.at("ratios");
  const util::Json& cur_ratios = current.at("ratios");
  for (const auto& [name, base_value] : base_ratios.members()) {
    const util::Json* cur = cur_ratios.find(name);
    if (cur == nullptr) {
      table.add_row({name, fmt(base_value.as_number(), 3), "missing", "-",
                     "FAIL"});
      ++failures;
      continue;
    }
    const double floor = base_value.as_number() * (1.0 - tolerance);
    const bool ok = cur->as_number() >= floor;
    if (!ok) ++failures;
    table.add_row({name, fmt(base_value.as_number(), 3),
                   fmt(cur->as_number(), 3), fmt(floor, 3),
                   ok ? "ok" : "FAIL"});
  }
  for (const Requirement& req : requirements) {
    const util::Json* cur = cur_ratios.find(req.ratio);
    const bool ok = cur != nullptr && cur->as_number() >= req.floor;
    if (!ok) ++failures;
    table.add_row({req.ratio + " (required)", "-",
                   cur == nullptr ? "missing" : fmt(cur->as_number(), 3),
                   fmt(req.floor, 3), ok ? "ok" : "FAIL"});
  }
  table.print(std::cout, false);

  // Absolute numbers: informational only (machine-dependent).
  std::cout << "\nmetrics (informational, ops/sec):\n";
  const util::Json& base_metrics = baseline.at("metrics");
  const util::Json& cur_metrics = current.at("metrics");
  for (const auto& [name, cur_value] : cur_metrics.members()) {
    const util::Json* base = base_metrics.find(name);
    std::cout << "  " << name << ": "
              << fmt(cur_value.at("ops_per_sec").as_number(), 1);
    if (base != nullptr) {
      std::cout << " (baseline " << fmt(base->at("ops_per_sec").as_number(), 1)
                << ")";
    }
    std::cout << "\n";
  }

  if (failures > 0) {
    std::cout << "\nFAIL: " << failures << " gate(s) regressed beyond "
              << fmt(tolerance * 100.0, 0) << "% tolerance\n";
    return 1;
  }
  std::cout << "\nOK: all " << base_ratios.members().size() << " ratio(s) and "
            << requirements.size() << " floor(s) within tolerance\n";
  return 0;
}

}  // namespace
}  // namespace rnt

int main(int argc, char** argv) {
  try {
    rnt::Flags flags(argc, argv);
    const int rc = rnt::run(flags);
    flags.finish();
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
