// rnt_cli — command-line front end to the robust-tomography library.
//
// Subcommands:
//   topology  Generate or inspect a topology (optionally save an edge list).
//   select    Run a path-selection algorithm on a workload and print the
//             chosen probe paths.
//   evaluate  Score a selection algorithm's robustness under failures.
//   learn     Run an online learner and report its progress.
//   localize  Score single-link failure localization of a selection.
//   pipeline  Replay a failure trace through the adaptive replanning
//             pipeline (online estimation + drift-gated re-selection).
//   serve     Run the concurrent tomography service on a TCP port.
//   client    Send protocol lines to a running service.
//   cluster-serve  Run one cluster worker (the same service, shard verbs).
//   cluster   Coordinate sharded ER/RoMe sweeps across workers with
//             failover; verifies the merge bitwise against single-node.
//
// Examples:
//   rnt_cli topology --as AS3257 --output as3257.edges
//   rnt_cli select --as AS1755 --paths 400 --algorithm prob-rome \
//                  --budget-frac 0.1
//   rnt_cli evaluate --as AS3257 --paths 800 --algorithm select-path \
//                    --budget-frac 0.1 --scenarios 200
//   rnt_cli learn --as AS1755 --paths 100 --epochs 500 --learner lsr
//   rnt_cli localize --as AS1755 --paths 200 --budget-frac 0.15
//   rnt_cli pipeline --nodes 40 --links 80 --paths 120 --policy adaptive \
//                    --segments 2,10,5 --segment-epochs 40
//   rnt_cli serve --port 7070 --threads 8 --cache 8
//   rnt_cli client --port 7070 --request "select as=AS1755 budget-frac=0.1"
//   rnt_cli cluster-serve --port 7071
//   rnt_cli cluster --workers 7071,7072 --paths 200 --budget-fracs 0.1,0.3
//
// Command implementations live in cli_commands.cpp so the test suite can
// drive them directly.
#include <iostream>

#include "cli_commands.h"

int main(int argc, char** argv) {
  try {
    return rnt::cli::dispatch(argc, argv, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
