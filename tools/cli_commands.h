// Implementations of the rnt_cli subcommands, separated from main() so the
// test suite can drive them with explicit flags and capture their output.
#pragma once

#include <iosfwd>

#include "util/flags.h"

namespace rnt::cli {

/// `rnt_cli topology` — generate/load a topology, print structural stats,
/// optionally save an edge list.
int cmd_topology(Flags& flags, std::ostream& out);

/// `rnt_cli select` — run a selection algorithm on a workload and print
/// the chosen paths.
int cmd_select(Flags& flags, std::ostream& out);

/// `rnt_cli evaluate` — score a selection's robustness under failures.
int cmd_evaluate(Flags& flags, std::ostream& out);

/// `rnt_cli learn` — run an online learner and report progress.
int cmd_learn(Flags& flags, std::ostream& out);

/// `rnt_cli localize` — score single-link failure localization.
int cmd_localize(Flags& flags, std::ostream& out);

/// `rnt_cli infer` — run the end-to-end inference loop (select → fail →
/// measure → solve → score) and report per-link estimation error.
int cmd_infer(Flags& flags, std::ostream& out);

/// `rnt_cli pipeline` — replay a (possibly non-stationary) failure trace
/// through the adaptive replanning pipeline and report per-run metrics.
int cmd_pipeline(Flags& flags, std::ostream& out);

/// `rnt_cli serve` — run the concurrent tomography service over TCP until
/// SIGINT (or a `shutdown` request); dumps metrics on exit.
int cmd_serve(Flags& flags, std::ostream& out);

/// `rnt_cli client` — send protocol lines (--request or stdin) to a
/// running service and print the replies.
int cmd_client(Flags& flags, std::istream& in, std::ostream& out);

/// `rnt_cli cluster-serve` — run one cluster worker process: the same
/// TCP service as `serve`, announced as a shard worker.
int cmd_cluster_serve(Flags& flags, std::ostream& out);

/// `rnt_cli cluster` — coordinate fig5-style ER/RoMe sweeps across worker
/// processes, with failover, and (by default) verify the merged answers
/// bitwise against a local single-node run.
int cmd_cluster(Flags& flags, std::ostream& out);

/// `rnt_cli fuzz` — run the deterministic correctness harness: seeded
/// random instances checked against brute-force oracles and differential
/// twins, with failing cases shrunk to replayable repro files.
int cmd_fuzz(Flags& flags, std::ostream& out);

/// Prints the usage text.
void print_usage(std::ostream& out);

/// Full dispatch (used by main): parses the subcommand and runs it.
int dispatch(int argc, char** argv, std::ostream& out);

}  // namespace rnt::cli
