#include "cli_commands.h"

#include <atomic>
#include <csignal>
#include <iostream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "boolnt/identifiability.h"
#include "boolnt/localize.h"
#include "cluster/coordinator.h"
#include "core/expected_rank.h"
#include "core/kernel_er.h"
#include "core/matrome.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "core/selectors/selector.h"
#include "exp/metrics.h"
#include "exp/workload.h"
#include "failures/srlg.h"
#include "graph/bridges.h"
#include "graph/centrality.h"
#include "graph/io.h"
#include "infer/inference.h"
#include "learning/baselines.h"
#include "learning/lsr.h"
#include "learning/simulator.h"
#include "online/pipeline.h"
#include "service/client.h"
#include "service/reactor_server.h"
#include "service/server.h"
#include "testkit/checks.h"
#include "testkit/fuzzer.h"
#include "testkit/instance.h"
#include "tomo/localization.h"
#include "util/table.h"

namespace rnt::cli {
namespace {

/// Builds the workload shared by select / evaluate / learn / localize.
exp::Workload build_workload(Flags& flags) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto paths = static_cast<std::size_t>(flags.get_int("paths", 400));
  const double intensity = flags.get_double("intensity", 5.0);
  const std::string input = flags.get_string("input", "");
  const std::string as_name = flags.get_string("as", "");

  if (!input.empty()) {
    exp::Workload w;
    w.topology_name = input;
    w.graph = graph::load_edge_list(input);
    w.seed = seed;
    Rng rng(seed);
    w.system = std::make_unique<tomo::PathSystem>(
        tomo::build_path_system(w.graph, paths, rng, &w.monitors));
    w.failures = std::make_unique<failures::FailureModel>(
        failures::markopoulou_model(w.graph.edge_count(), rng, intensity));
    w.costs = tomo::CostModel::paper_model(w.monitors, rng);
    return w;
  }
  if (!as_name.empty()) {
    exp::WorkloadSpec spec;
    spec.topology = graph::parse_isp_topology(as_name);
    spec.candidate_paths = paths;
    spec.seed = seed;
    spec.failure_intensity = intensity;
    return exp::make_workload(spec);
  }
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 87));
  const auto links = static_cast<std::size_t>(flags.get_int("links", 161));
  return exp::make_custom_workload(nodes, links, paths, seed, intensity);
}

/// The ER engine behind a Selector-driven algorithm, or nullptr for the
/// algorithms that bypass the Selector registry (select-path, mat-rome).
/// `engine_kind` overrides the scenario backend independently of the
/// optimizer: monte-rome and kernel-rome are the same 50-scenario
/// sampler on the scenario ("mc") or bit-packed ("kernel") backend, so
/// either spelling composes with any --optimizer; prob-rome is the
/// analytical bound and accepts no override.
std::unique_ptr<core::ErEngine> make_engine(const exp::Workload& w,
                                            const std::string& algorithm,
                                            const std::string& engine_kind,
                                            std::uint64_t seed,
                                            const std::string& kernel_mode) {
  // --kernel selects the rank-kernel implementation inside the bit-packed
  // engine (auto | sliced | scalar); selections are bitwise identical
  // either way, so it is purely a performance knob.
  const core::KernelMode mode = core::parse_kernel_mode(kernel_mode);
  const bool mode_forced = mode != core::KernelMode::kAuto;
  if (algorithm == "prob-rome") {
    if (!engine_kind.empty() && engine_kind != "prob") {
      throw std::invalid_argument(
          "--engine: prob-rome always uses the analytical ProbBound engine");
    }
    if (mode_forced) {
      throw std::invalid_argument(
          "--kernel only applies to the kernel engine");
    }
    return std::make_unique<core::ProbBoundEr>(*w.system, *w.failures);
  }
  if (algorithm == "monte-rome" || algorithm == "kernel-rome") {
    const std::string kind =
        !engine_kind.empty() ? engine_kind
                             : (algorithm == "monte-rome" ? "mc" : "kernel");
    // Same sampler and seed for both backends, so the selection is
    // identical — the bit-packed rank kernel just gets there faster.
    Rng rng(seed * 101);
    if (kind == "mc") {
      if (mode_forced) {
        throw std::invalid_argument(
            "--kernel only applies to the kernel engine");
      }
      return std::make_unique<core::MonteCarloEr>(*w.system, *w.failures, 50,
                                                  rng);
    }
    if (kind == "kernel") {
      auto engine = std::make_unique<core::KernelErEngine>(
          core::KernelErEngine::monte_carlo(*w.system, *w.failures, 50, rng));
      engine->set_kernel_mode(mode);
      return engine;
    }
    throw std::invalid_argument("unknown --engine (want mc or kernel): " +
                                kind);
  }
  return nullptr;
}

core::Selection run_algorithm(const exp::Workload& w,
                              const std::string& algorithm, double budget,
                              std::uint64_t seed,
                              const std::string& optimizer = "rome",
                              const std::string& engine_kind = "",
                              const std::string& kernel_mode = "auto") {
  const std::unique_ptr<core::ErEngine> engine =
      make_engine(w, algorithm, engine_kind, seed, kernel_mode);
  if (engine == nullptr) {
    if (optimizer != "rome" || !engine_kind.empty() ||
        core::parse_kernel_mode(kernel_mode) != core::KernelMode::kAuto) {
      throw std::invalid_argument(
          "--optimizer/--engine/--kernel do not apply to " + algorithm +
          ": it does not run through the Selector "
          "registry");
    }
    if (algorithm == "select-path") {
      Rng rng(seed * 103);
      return core::select_path_budgeted(*w.system, w.costs, budget, rng);
    }
    if (algorithm == "mat-rome") {
      return core::matrome(*w.system, *w.failures);
    }
    throw std::invalid_argument(
        "unknown --algorithm (want prob-rome, monte-rome, kernel-rome, "
        "select-path or mat-rome): " +
        algorithm);
  }
  core::SelectorOptions options;
  options.seed = seed;
  std::unique_ptr<core::ProbBoundEr> bound;
  if (optimizer == "branch-and-bound") {
    bound = std::make_unique<core::ProbBoundEr>(*w.system, *w.failures);
    options.bound_engine = bound.get();
  }
  return core::make_selector(optimizer, options)
      ->select(*w.system, w.costs, budget, *engine);
}

double total_cost(const exp::Workload& w) {
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return w.costs.subset_cost(*w.system, all);
}

/// Parses a CSV of positive failure intensities ("2,10,5").
std::vector<double> parse_intensities(const std::string& csv) {
  std::vector<double> intensities;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size() || value <= 0.0) {
      throw std::invalid_argument("--segments: bad intensity '" + token +
                                  "'");
    }
    intensities.push_back(value);
  }
  if (intensities.empty()) {
    throw std::invalid_argument("--segments: no intensities given");
  }
  return intensities;
}

}  // namespace

void print_usage(std::ostream& out) {
  out <<
      "usage: rnt_cli "
      "<topology|select|evaluate|learn|localize|localize-node|infer|pipeline|"
      "serve|client|cluster-serve|cluster|fuzz> [--flags]\n"
      "\n"
      "common workload flags:\n"
      "  --as NAME          AS1755 | AS3257 | AS1239 (calibrated synthetic)\n"
      "  --input FILE       load an edge-list topology instead\n"
      "  --nodes N --links M  custom ISP-like topology\n"
      "  --paths N          candidate path count (default 400)\n"
      "  --seed S           RNG seed (default 1)\n"
      "  --intensity X      failure model scale (default 5.0)\n"
      "\n"
      "select/evaluate/localize flags:\n"
      "  --algorithm A      prob-rome | monte-rome | kernel-rome | "
      "select-path | mat-rome\n"
      "  --optimizer O      rome | eager | lazy-greedy | stochastic-greedy | "
      "local-search | branch-and-bound\n"
      "  --engine E         scenario backend override: mc | kernel\n"
      "  --kernel K         kernel engine rank kernel: auto | sliced | "
      "scalar\n"
      "                     (identical selections; sliced packs 64 "
      "scenarios per word)\n"
      "  --budget-frac F    budget as a fraction of probing all paths\n"
      "  --scenarios N      evaluation failure scenarios\n"
      "  --identifiability  also score link identifiability (evaluate)\n"
      "\n"
      "localize-node flags (plus select flags):\n"
      "  --family F         node | link hypothesis components (default "
      "node)\n"
      "  --k N              max simultaneous failures (default 2)\n"
      "  --scenarios N      injected failure trials (default 300)\n"
      "  --ident-cap N      also compute Ma-He / per-component "
      "identifiability up to N\n"
      "\n"
      "infer flags (plus select flags):\n"
      "  --model M          delay | loss measurement model (default delay)\n"
      "  --noise X          additive-domain probe noise sigma (default "
      "0.05)\n"
      "  --family F         independent | srlg failure family\n"
      "  --scenarios N      failure scenarios (default 200)\n"
      "  --threads N        solver workers; report is bitwise identical "
      "for any N\n"
      "\n"
      "learn flags:\n"
      "  --learner L        lsr | epsilon-greedy | thompson\n"
      "  --epochs N         training epochs (default 500)\n"
      "  --epsilon X        exploration rate for epsilon-greedy (default 0.1)\n"
      "\n"
      "topology flags:\n"
      "  --output FILE      save the topology as an edge list\n"
      "\n"
      "pipeline flags:\n"
      "  --policy P         static | adaptive | periodic | oracle\n"
      "  --segments CSV     failure intensities, one regime each "
      "(default 2,10,5)\n"
      "  --segment-epochs N epochs per regime (default 40)\n"
      "  --period N         periodic re-plan interval (default 20)\n"
      "  --budget-frac F    probing budget fraction (default 0.3)\n"
      "  --trace FILE       replay a saved failure trace instead\n"
      "  --series FILE      save the per-epoch series as CSV\n"
      "\n"
      "serve flags:\n"
      "  --port N           TCP port on 127.0.0.1 (default 7070)\n"
      "  --threads N        worker pool size (default: hardware)\n"
      "  --cache N          resident workloads, LRU-bounded (default 8)\n"
      "  --timeout S        per-request reply deadline in seconds\n"
      "  --reactor          event-loop front end (epoll) instead of\n"
      "                     thread-per-connection; replies are identical\n"
      "  --max-queue N      reactor admission bound: in-flight requests\n"
      "                     past it get 'error overloaded: ...' (0 = off)\n"
      "  --idle-timeout S   reactor: evict connections idle for S seconds\n"
      "  --max-conns N      reactor connection cap (default: below\n"
      "                     RLIMIT_NOFILE)\n"
      "\n"
      "client flags:\n"
      "  --host H --port N  service address (default 127.0.0.1:7070)\n"
      "  --request LINE     one protocol line; omit to read lines from "
      "stdin\n"
      "  --timeout S        reply wait in seconds\n"
      "\n"
      "cluster-serve flags: same as serve (a worker is the same service)\n"
      "\n"
      "cluster flags (plus the common workload flags):\n"
      "  --workers CSV      worker ports or host:port pairs (required)\n"
      "  --weights CSV      relative shard sizes, one per worker\n"
      "  --runs N           Monte Carlo scenarios (default 50)\n"
      "  --budget-fracs CSV budget sweep (default 0.1,0.2,0.3)\n"
      "  --timeout S --connect-timeout S  per-RPC deadlines\n"
      "  --retries N --backoff S          per-RPC retry ladder\n"
      "  --heartbeat-interval S           0 disables the monitor thread\n"
      "  --heartbeat-deadline S           per-probe deadline (default 1)\n"
      "  --verify BOOL      bitwise-compare against single-node "
      "(default true)\n"
      "\n"
      "fuzz flags:\n"
      "  --seed S           master seed; every case derives from it\n"
      "  --cases N          fuzz cases to run (default 1000)\n"
      "  --minutes M        wall-clock cap; 0 = none (default 0)\n"
      "  --checks CSV       run only the named checks (default: all)\n"
      "  --out DIR          write minimized repro files here\n"
      "  --replay FILE      re-run the check recorded in a repro file\n"
      "  --max-failures N   stop after N failures; 0 = never (default 1)\n"
      "  --no-shrink        keep failing instances unminimized\n"
      "  --inject-probbound X  deliberately deflate ProbBound by X per "
      "path (harness self-test)\n"
      "  --inject-sliced-er X  deliberately inflate the sliced kernel's "
      "ER by X (harness self-test)\n"
      "  --list             list registered checks and exit\n";
}

int cmd_topology(Flags& flags, std::ostream& out) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string input = flags.get_string("input", "");
  const std::string as_name = flags.get_string("as", "");
  graph::Graph g(0);
  if (!input.empty()) {
    g = graph::load_edge_list(input);
  } else if (!as_name.empty()) {
    Rng rng(seed);
    g = graph::build_isp_topology(graph::parse_isp_topology(as_name), rng);
  } else {
    const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 87));
    const auto links = static_cast<std::size_t>(flags.get_int("links", 161));
    Rng rng(seed);
    g = graph::build_isp_like(nodes, links, rng);
  }

  const auto bridges = graph::find_bridges(g);
  const auto articulation = graph::find_articulation_points(g);
  std::size_t max_deg = 0;
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    max_deg = std::max(max_deg, g.degree(n));
  }
  TablePrinter table({"property", "value"});
  table.add_row({"nodes", std::to_string(g.node_count())});
  table.add_row({"links", std::to_string(g.edge_count())});
  table.add_row({"connected", g.is_connected() ? "yes" : "no"});
  table.add_row({"max degree", std::to_string(max_deg)});
  table.add_row({"bridge links", std::to_string(bridges.size())});
  table.add_row({"articulation points", std::to_string(articulation.size())});
  table.print(out);

  const std::string output = flags.get_string("output", "");
  if (!output.empty()) {
    graph::save_edge_list(g, output);
    out << "\nwrote " << output << "\n";
  }
  return 0;
}

int cmd_select(Flags& flags, std::ostream& out) {
  const exp::Workload w = build_workload(flags);
  const std::string algorithm = flags.get_string("algorithm", "prob-rome");
  const std::string optimizer = flags.get_string("optimizer", "rome");
  const std::string engine_kind = flags.get_string("engine", "");
  const double budget = flags.get_double("budget-frac", 0.3) * total_cost(w);
  const core::Selection sel =
      run_algorithm(w, algorithm, budget, w.seed, optimizer, engine_kind,
                    flags.get_string("kernel", "auto"));

  // The default optimizer keeps the historical label so default output
  // stays byte-identical; non-default optimizers are named explicitly.
  const std::string label =
      optimizer == "rome" ? algorithm : algorithm + "+" + optimizer;
  out << "workload: " << w.topology_name << ", " << w.system->path_count()
      << " candidate paths, budget " << budget << "\n";
  out << label << " selected " << sel.size() << " paths, cost "
      << sel.cost << ", objective " << sel.objective << ", rank "
      << w.system->rank_of(sel.paths) << "\n\n";
  TablePrinter table({"path", "src", "dst", "hops", "cost", "availability"});
  const bool verbose = flags.get_bool("verbose", false);
  const std::size_t limit =
      verbose ? sel.paths.size() : std::min<std::size_t>(sel.paths.size(), 20);
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& p = w.system->path(sel.paths[i]);
    table.add_row({std::to_string(sel.paths[i]), std::to_string(p.source),
                   std::to_string(p.destination), std::to_string(p.hops),
                   fmt(w.costs.path_cost(p), 0),
                   fmt(w.system->expected_availability(sel.paths[i],
                                                       *w.failures),
                       4)});
  }
  table.print(out);
  if (limit < sel.paths.size()) {
    out << "... " << sel.paths.size() - limit << " more (use --verbose)\n";
  }
  return 0;
}

int cmd_evaluate(Flags& flags, std::ostream& out) {
  const exp::Workload w = build_workload(flags);
  const std::string algorithm = flags.get_string("algorithm", "prob-rome");
  const double budget = flags.get_double("budget-frac", 0.3) * total_cost(w);
  const auto scenarios =
      static_cast<std::size_t>(flags.get_int("scenarios", 200));
  const bool identifiability = flags.get_bool("identifiability", false);

  const core::Selection sel =
      run_algorithm(w, algorithm, budget, w.seed,
                    flags.get_string("optimizer", "rome"),
                    flags.get_string("engine", ""),
                    flags.get_string("kernel", "auto"));
  Rng rng = w.eval_rng();
  exp::EvalOptions opts;
  opts.scenarios = scenarios;
  opts.identifiability = identifiability;
  const auto eval =
      exp::evaluate_selection(*w.system, sel.paths, *w.failures, opts, rng);

  TablePrinter table({"metric", "value"});
  table.add_row({"selected paths", std::to_string(sel.size())});
  table.add_row({"probing cost", fmt(sel.cost, 0)});
  table.add_row({"no-failure rank", std::to_string(eval.no_failure_rank)});
  table.add_row({"rank under failures (mean)", fmt(eval.rank.stats.mean(), 2)});
  table.add_row({"rank under failures (std)", fmt(eval.rank.stats.stddev(), 2)});
  table.add_row({"rank 10th percentile",
                 fmt(eval.rank.distribution.quantile(0.1), 1)});
  if (identifiability) {
    table.add_row({"identifiable links (no failure)",
                   std::to_string(eval.no_failure_identifiability)});
    table.add_row({"identifiable links (mean)",
                   fmt(eval.identifiability.stats.mean(), 2)});
  }
  table.print(out);
  return 0;
}

int cmd_learn(Flags& flags, std::ostream& out) {
  const exp::Workload w = build_workload(flags);
  const std::string which = flags.get_string("learner", "lsr");
  const double budget = flags.get_double("budget-frac", 0.3) * total_cost(w);
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 500));

  std::unique_ptr<learning::PathLearner> learner;
  if (which == "lsr") {
    learner = std::make_unique<learning::Lsr>(
        *w.system, w.costs, learning::LsrConfig{.budget = budget});
  } else if (which == "epsilon-greedy") {
    learner = std::make_unique<learning::EpsilonGreedy>(
        *w.system, w.costs, budget, flags.get_double("epsilon", 0.1),
        Rng(w.seed * 5));
  } else if (which == "thompson") {
    learner = std::make_unique<learning::ThompsonSampling>(
        *w.system, w.costs, budget, Rng(w.seed * 7));
  } else {
    throw std::invalid_argument(
        "unknown --learner (want lsr, epsilon-greedy or thompson): " + which);
  }

  Rng sim_rng(w.seed * 11);
  TablePrinter table({"epochs", "avg reward (window)"});
  const std::size_t window = std::max<std::size_t>(epochs / 5, 1);
  std::size_t done = 0;
  while (done < epochs) {
    const std::size_t batch = std::min(window, epochs - done);
    const auto result = learning::run_learner(*learner, *w.system,
                                              *w.failures, batch, sim_rng);
    done += batch;
    table.add_row(
        {std::to_string(done),
         fmt(result.cumulative_reward / static_cast<double>(batch), 2)});
  }
  table.print(out);

  const auto learned = learner->final_selection();
  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto clairvoyant = core::rome(*w.system, w.costs, budget, engine);
  Rng eval_rng = w.eval_rng();
  const double s_learned = learning::estimate_expected_reward(
      *w.system, learned.paths, *w.failures, 500, eval_rng);
  const double s_clair = learning::estimate_expected_reward(
      *w.system, clairvoyant.paths, *w.failures, 500, eval_rng);
  out << "\nlearned selection expected rank: " << fmt(s_learned, 2)
      << " (clairvoyant " << fmt(s_clair, 2) << ", "
      << fmt(s_clair > 0 ? 100.0 * s_learned / s_clair : 100.0, 1) << "%)\n";
  return 0;
}

int cmd_localize(Flags& flags, std::ostream& out) {
  const exp::Workload w = build_workload(flags);
  const std::string algorithm = flags.get_string("algorithm", "prob-rome");
  const double budget = flags.get_double("budget-frac", 0.3) * total_cost(w);
  const auto trials =
      static_cast<std::size_t>(flags.get_int("scenarios", 300));
  const core::Selection sel =
      run_algorithm(w, algorithm, budget, w.seed,
                    flags.get_string("optimizer", "rome"),
                    flags.get_string("engine", ""),
                    flags.get_string("kernel", "auto"));
  Rng rng = w.eval_rng();
  const auto score =
      tomo::score_localization(*w.system, sel.paths, *w.failures, trials, rng);
  TablePrinter table({"metric", "value"});
  table.add_row({"selected paths", std::to_string(sel.size())});
  table.add_row({"injected failures", std::to_string(score.trials)});
  table.add_row({"localized exactly", std::to_string(score.exact)});
  table.add_row({"ambiguous", std::to_string(score.ambiguous)});
  table.add_row({"invisible", std::to_string(score.invisible)});
  table.add_row({"mean candidate set", fmt(score.mean_candidates, 2)});
  table.print(out);
  return 0;
}

int cmd_localize_node(Flags& flags, std::ostream& out) {
  const exp::Workload w = build_workload(flags);
  const std::string algorithm = flags.get_string("algorithm", "prob-rome");
  const double budget = flags.get_double("budget-frac", 0.3) * total_cost(w);
  const std::string family = flags.get_string("family", "node");
  if (family != "node" && family != "link") {
    throw std::invalid_argument("--family must be node or link");
  }
  const auto k = static_cast<std::size_t>(flags.get_int("k", 2));
  if (k == 0) throw std::invalid_argument("--k must be positive");
  const auto trials =
      static_cast<std::size_t>(flags.get_int("scenarios", 300));
  const auto ident_cap =
      static_cast<std::size_t>(flags.get_int("ident-cap", 0));
  const boolnt::HypothesisSpace space =
      family == "link"
          ? boolnt::HypothesisSpace::links_of(w.system->link_count())
          : boolnt::HypothesisSpace::nodes_of(w.graph);
  const core::Selection sel =
      run_algorithm(w, algorithm, budget, w.seed,
                    flags.get_string("optimizer", "rome"),
                    flags.get_string("engine", ""),
                    flags.get_string("kernel", "auto"));
  Rng rng = w.eval_rng();
  const auto score = boolnt::score_multi_localization(*w.system, sel.paths,
                                                      space, k, trials, rng);
  TablePrinter table({"metric", "value"});
  table.add_row({"selected paths", std::to_string(sel.size())});
  table.add_row({"components (" + family + ")",
                 std::to_string(space.component_count())});
  table.add_row({"max simultaneous failures", std::to_string(k)});
  table.add_row({"injected failures", std::to_string(score.trials)});
  table.add_row({"localized exactly", std::to_string(score.exact)});
  table.add_row({"ambiguous", std::to_string(score.ambiguous)});
  table.add_row({"misled", std::to_string(score.misled)});
  table.add_row({"invisible", std::to_string(score.invisible)});
  table.add_row({"mean candidate sets", fmt(score.mean_candidates, 2)});
  table.add_row({"exact fraction", fmt(score.exact_fraction(), 3)});
  table.add_row({"hit fraction", fmt(score.hit_fraction(), 3)});
  if (ident_cap > 0) {
    const auto report = boolnt::identifiability_report(*w.system, sel.paths,
                                                       space, ident_cap);
    table.add_row({"identifiability cap", std::to_string(report.k_cap)});
    table.add_row(
        {"max identifiable", std::to_string(report.max_identifiable)});
    std::size_t min_component = report.k_cap;
    for (const std::size_t level : report.per_component) {
      min_component = std::min(min_component, level);
    }
    table.add_row({"weakest component level", std::to_string(min_component)});
  }
  table.print(out);
  return 0;
}

int cmd_infer(Flags& flags, std::ostream& out) {
  const exp::Workload w = build_workload(flags);
  const std::string algorithm = flags.get_string("algorithm", "prob-rome");
  const double budget = flags.get_double("budget-frac", 0.3) * total_cost(w);
  const std::string family = flags.get_string("family", "independent");

  infer::InferenceConfig config;
  config.model =
      infer::parse_measurement_model(flags.get_string("model", "delay"));
  config.noise_std = flags.get_double("noise", 0.05);
  if (config.noise_std < 0.0) {
    throw std::invalid_argument("--noise must be non-negative");
  }
  config.scenarios = static_cast<std::size_t>(flags.get_int("scenarios", 200));
  config.threads = static_cast<std::size_t>(flags.get_int("threads", 1));

  const core::Selection sel =
      run_algorithm(w, algorithm, budget, w.seed,
                    flags.get_string("optimizer", "rome"),
                    flags.get_string("engine", ""),
                    flags.get_string("kernel", "auto"));
  const infer::GroundTruth truth = infer::campaign_truth(
      config.model, w.system->link_count(), w.seed, config.truth);

  infer::InferenceReport report;
  if (family == "independent") {
    report = infer::run_inference(*w.system, sel.paths, *w.failures, truth,
                                  config, w.seed);
  } else if (family == "srlg") {
    // Same geography-like SRLG layout as ext_correlated_failures: disjoint
    // groups of links failing all-or-nothing on top of the background model.
    Rng srlg_rng(w.seed * 31);
    const failures::SrlgModel srlg = failures::make_random_srlg_model(
        *w.failures, /*group_count=*/8, /*group_size=*/4,
        /*group_probability=*/0.02, srlg_rng);
    report = infer::run_inference(
        *w.system, sel.paths,
        [&srlg](Rng& rng) { return srlg.sample(rng); }, truth, config,
        w.seed);
  } else {
    throw std::invalid_argument(
        "unknown --family (want independent or srlg): " + family);
  }

  out << "workload: " << w.topology_name << ", " << sel.size()
      << " probe paths (" << algorithm << ", budget " << budget << "), "
      << infer::to_string(config.model) << " model, noise "
      << config.noise_std << "\n\n";
  TablePrinter table({"metric", "value"});
  table.add_row({"scenarios", std::to_string(report.scenarios)});
  table.add_row({"solved (>=1 surviving row)", std::to_string(report.solved)});
  table.add_row({"cgls converged", std::to_string(report.converged)});
  table.add_row({"identifiable links (mean)",
                 fmt(report.identifiable.mean(), 2)});
  table.add_row({"coverage (mean)", fmt(report.coverage.mean(), 3)});
  table.add_row({"per-link MSE (mean)", fmt(report.mse.mean(), 6)});
  table.add_row({"network MSE (mean)", fmt(report.network_mse.mean(), 6)});
  table.add_row({"per-link |error| (mean)",
                 fmt(report.mean_abs_error.mean(), 6)});
  table.add_row({"per-link |error| (worst)",
                 fmt(report.max_abs_error.max(), 6)});
  table.add_row({"residual norm (mean)", fmt(report.residual.mean(), 6)});
  table.add_row({"cgls iterations (mean)", fmt(report.iterations.mean(), 1)});
  table.print(out);
  return 0;
}

int cmd_pipeline(Flags& flags, std::ostream& out) {
  const exp::Workload w = build_workload(flags);
  const std::size_t links = w.system->link_count();

  // Non-stationary workload: one markopoulou model per segment, each with
  // its own forked rng so a regime change moves which links are fragile,
  // not just how fragile they are.
  const std::vector<double> intensities =
      parse_intensities(flags.get_string("segments", "2,10,5"));
  const auto segment_epochs =
      static_cast<std::size_t>(flags.get_int("segment-epochs", 40));
  if (segment_epochs == 0) {
    throw std::invalid_argument("--segment-epochs must be positive");
  }
  Rng model_rng(w.seed * 13);
  std::vector<failures::FailureModel> models;
  models.reserve(intensities.size());
  for (const double intensity : intensities) {
    Rng seg_rng = model_rng.fork();
    models.push_back(failures::markopoulou_model(links, seg_rng, intensity));
  }

  const std::string trace_file = flags.get_string("trace", "");
  failures::FailureTrace trace(links);
  if (!trace_file.empty()) {
    trace = failures::FailureTrace::load(trace_file);
    if (trace.link_count() != links) {
      throw std::invalid_argument(
          "--trace: trace has " + std::to_string(trace.link_count()) +
          " links, workload has " + std::to_string(links));
    }
  } else {
    Rng record_rng(w.seed * 19);
    std::vector<failures::FailureTrace> segments;
    segments.reserve(models.size());
    for (const failures::FailureModel& model : models) {
      segments.push_back(
          failures::FailureTrace::record(model, segment_epochs, record_rng));
    }
    trace = failures::FailureTrace::concatenate(segments);
  }

  online::PipelineConfig config;
  config.budget = flags.get_double("budget-frac", 0.3) * total_cost(w);
  config.policy =
      online::parse_replan_policy(flags.get_string("policy", "adaptive"));
  config.period = static_cast<std::size_t>(flags.get_int("period", 20));
  // Deterministic given the seed, but non-zero so the estimation-error
  // series actually exercises the least-squares solver.
  config.probe.jitter_std_ms = flags.get_double("jitter", 0.5);
  config.oracle = [&models, segment_epochs](std::size_t epoch) {
    const std::size_t segment =
        std::min(epoch / segment_epochs, models.size() - 1);
    return models[segment];
  };

  Rng truth_rng(w.seed * 23);
  const tomo::GroundTruth truth = tomo::random_delays(links, truth_rng);

  online::Pipeline pipeline(*w.system, w.costs, truth, config);
  Rng run_rng(w.seed * 29);
  const online::PipelineResult result = pipeline.run(trace, run_rng);

  out << "workload: " << w.topology_name << ", " << w.system->path_count()
      << " candidate paths, budget " << config.budget << ", policy "
      << online::to_string(config.policy) << "\n";
  out << "trace: " << trace.epoch_count() << " epochs";
  if (trace_file.empty()) {
    out << " (" << intensities.size() << " segments x " << segment_epochs
        << ")";
  }
  out << ", mean concurrent failures "
      << fmt(trace.mean_concurrent_failures(), 2) << "\n\n";

  TablePrinter table({"metric", "value"});
  table.add_row({"epochs", std::to_string(result.epochs)});
  table.add_row({"re-plans", std::to_string(result.replans)});
  table.add_row({"re-plan fraction", fmt(result.replan_fraction(), 3)});
  table.add_row({"drift triggers", std::to_string(result.drift_triggers)});
  table.add_row({"cumulative surviving rank", fmt(result.cumulative_rank, 0)});
  table.add_row({"mean surviving rank", fmt(result.mean_rank, 2)});
  table.add_row({"mean estimation error", fmt(result.mean_estimation_error, 3)});
  table.add_row({"localized exactly", std::to_string(result.localized_exact)});
  table.add_row({"probe bytes", std::to_string(result.probe_bytes)});
  table.add_row({"gain evaluations", std::to_string(result.gain_evaluations)});
  table.add_row({"final selection", std::to_string(result.final_selection.size())});
  table.print(out);

  const std::string series_file = flags.get_string("series", "");
  if (!series_file.empty()) {
    result.series.save_csv(series_file);
    out << "\nwrote " << series_file << "\n";
  }
  return 0;
}

namespace {

/// SIGINT plumbing for `serve`: the handler may only touch the atomic
/// pointers; both stop() implementations are async-signal-safe (an atomic
/// store, plus a self-pipe write for the reactor).
std::atomic<service::TcpServer*> g_server{nullptr};
std::atomic<service::ReactorServer*> g_reactor_server{nullptr};

void handle_sigint(int) {
  if (service::TcpServer* server = g_server.load()) server->stop();
  if (service::ReactorServer* server = g_reactor_server.load()) {
    server->stop();
  }
}

}  // namespace

namespace {

void print_server_banner(std::ostream& out, bool worker, bool reactor,
                         std::uint16_t port, std::size_t pool_size,
                         std::size_t cache_capacity,
                         double request_timeout_s) {
  out << (worker ? "cluster worker" : "tomography service")
      << " listening on 127.0.0.1:" << port << " ("
      << (reactor ? "reactor front end, " : "") << pool_size
      << " worker threads, cache " << cache_capacity
      << " workloads, request timeout " << request_timeout_s << "s)\n";
  if (worker) {
    out << "awaiting a coordinator (worker-hello / shard-eval / "
           "shard-sweep); 'shutdown' or SIGINT to stop\n";
  } else {
    out << "protocol: one request per line, e.g. 'select as=AS1755 "
           "budget-frac=0.1'; 'shutdown' or SIGINT to stop\n";
  }
  out.flush();
}

/// Shared body of `serve` and `cluster-serve` — the identical TCP service
/// either way (a cluster worker is just a service answering shard verbs);
/// only the banner differs.  `--reactor` swaps the thread-per-connection
/// front end for the event-loop one; replies are byte-identical.
int run_server_command(Flags& flags, std::ostream& out, bool worker) {
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 7070));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const auto cache_capacity =
      static_cast<std::size_t>(flags.get_int("cache", 8));
  const double request_timeout_s = flags.get_double("timeout", 60.0);
  const bool reactor = flags.get_bool("reactor", false);
  const auto max_queue =
      static_cast<std::size_t>(flags.get_int("max-queue", 0));
  const double idle_timeout_s = flags.get_double("idle-timeout", 0.0);
  const auto max_conns =
      static_cast<std::size_t>(flags.get_int("max-conns", 0));
  flags.finish();

  struct sigaction action{};
  action.sa_handler = handle_sigint;
  struct sigaction previous{};

  if (reactor) {
    service::ReactorServerConfig config;
    config.port = port;
    config.threads = threads;
    config.cache_capacity = cache_capacity;
    config.request_timeout_s = request_timeout_s;
    config.max_queue = max_queue;
    config.idle_timeout_ms =
        static_cast<std::uint64_t>(idle_timeout_s * 1000.0);
    config.max_connections = max_conns;

    service::ReactorServer server(config);
    g_reactor_server.store(&server);
    ::sigaction(SIGINT, &action, &previous);
    print_server_banner(out, worker, /*reactor=*/true, server.port(),
                        server.service().pool_size(), cache_capacity,
                        request_timeout_s);
    server.run();
    ::sigaction(SIGINT, &previous, nullptr);
    g_reactor_server.store(nullptr);
    out << "\n" << server.service().summary();
    return 0;
  }

  service::ServerConfig config;
  config.port = port;
  config.threads = threads;
  config.cache_capacity = cache_capacity;
  config.request_timeout_s = request_timeout_s;

  service::TcpServer server(config);
  g_server.store(&server);
  ::sigaction(SIGINT, &action, &previous);
  print_server_banner(out, worker, /*reactor=*/false, server.port(),
                      server.service().pool_size(), cache_capacity,
                      request_timeout_s);
  server.run();

  ::sigaction(SIGINT, &previous, nullptr);
  g_server.store(nullptr);
  out << "\n" << server.service().summary();
  return 0;
}

}  // namespace

int cmd_serve(Flags& flags, std::ostream& out) {
  return run_server_command(flags, out, /*worker=*/false);
}

int cmd_cluster_serve(Flags& flags, std::ostream& out) {
  return run_server_command(flags, out, /*worker=*/true);
}

namespace {

/// Parses "--workers 7071,7072" or "--workers host:port,host:port", with
/// optional per-worker "--weights 1,2" shard-size multipliers.
std::vector<cluster::WorkerEndpoint> parse_workers(
    const std::string& workers_csv, const std::string& weights_csv) {
  std::vector<cluster::WorkerEndpoint> endpoints;
  std::istringstream in(workers_csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    cluster::WorkerEndpoint endpoint;
    std::string port_text = token;
    const std::size_t colon = token.rfind(':');
    if (colon != std::string::npos) {
      endpoint.host = token.substr(0, colon);
      port_text = token.substr(colon + 1);
    }
    std::size_t used = 0;
    const unsigned long port = std::stoul(port_text, &used);
    if (used != port_text.size() || port == 0 || port > 65535) {
      throw std::invalid_argument("--workers: bad port in '" + token + "'");
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    endpoints.push_back(std::move(endpoint));
  }
  if (endpoints.empty()) {
    throw std::invalid_argument(
        "--workers: need a comma-separated port or host:port list");
  }
  if (!weights_csv.empty()) {
    std::istringstream win(weights_csv);
    std::size_t i = 0;
    while (std::getline(win, token, ',')) {
      if (token.empty()) continue;
      if (i >= endpoints.size()) {
        throw std::invalid_argument("--weights: more weights than workers");
      }
      endpoints[i++].weight = std::stod(token);
    }
    if (i != endpoints.size()) {
      throw std::invalid_argument("--weights: fewer weights than workers");
    }
  }
  return endpoints;
}

std::vector<double> parse_fracs(const std::string& csv) {
  std::vector<double> fracs;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const double value = std::stod(token);
    if (value <= 0.0 || value > 1.0) {
      throw std::invalid_argument("--budget-fracs: want fractions in (0, 1]");
    }
    fracs.push_back(value);
  }
  if (fracs.empty()) {
    throw std::invalid_argument("--budget-fracs: no fractions given");
  }
  return fracs;
}

}  // namespace

int cmd_cluster(Flags& flags, std::ostream& out) {
  service::WorkloadKey key;
  key.topology = flags.get_string("as", "");
  key.nodes = static_cast<std::size_t>(flags.get_int("nodes", 87));
  key.links = static_cast<std::size_t>(flags.get_int("links", 161));
  key.candidate_paths =
      static_cast<std::size_t>(flags.get_int("paths", 400));
  key.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  key.intensity = flags.get_double("intensity", 5.0);
  key.unit_costs = flags.get_bool("unit-costs", false);

  std::vector<cluster::WorkerEndpoint> workers = parse_workers(
      flags.get_string("workers", ""), flags.get_string("weights", ""));

  cluster::CoordinatorConfig config;
  config.runs = static_cast<std::size_t>(flags.get_int("runs", 50));
  config.rpc.connect_timeout_s = flags.get_double("connect-timeout", 5.0);
  config.rpc.reply_timeout_s = flags.get_double("timeout", 60.0);
  config.rpc.retries = static_cast<std::size_t>(flags.get_int("retries", 2));
  config.rpc.backoff_s = flags.get_double("backoff", 0.05);
  config.heartbeat_interval_s =
      flags.get_double("heartbeat-interval", 0.0);
  config.heartbeat_deadline_s =
      flags.get_double("heartbeat-deadline", 1.0);

  const std::vector<double> fracs =
      parse_fracs(flags.get_string("budget-fracs", "0.1,0.2,0.3"));
  const bool verify = flags.get_bool("verify", true);
  flags.finish();

  cluster::Coordinator coord(key, std::move(workers), config);
  const std::vector<service::Response> hellos = coord.hello();
  TablePrinter fleet({"worker", "endpoint", "slice", "status"});
  for (std::size_t i = 0; i < hellos.size(); ++i) {
    const cluster::Slice& slice = coord.slices()[i];
    const cluster::WorkerEndpoint& ep = coord.endpoint(i);
    fleet.add_row({std::to_string(i),
                   ep.host + ":" + std::to_string(ep.port),
                   "[" + std::to_string(slice.begin) + ", " +
                       std::to_string(slice.end) + ")",
                   hellos[i].ok ? "pid " + hellos[i].at("pid")
                                : hellos[i].error});
  }
  fleet.print(out);
  coord.start_heartbeats();

  const exp::Workload& w = coord.workload().workload;
  out << "workload: " << w.topology_name << ", "
      << w.system->path_count() << " candidate paths, "
      << coord.engine().scenario_count() << " scenarios across "
      << coord.worker_count() << " workers\n\n";

  bool all_match = true;
  TablePrinter table(verify ? std::vector<std::string>{"budget-frac",
                                                       "paths", "cost",
                                                       "cluster ER",
                                                       "match"}
                            : std::vector<std::string>{"budget-frac",
                                                       "paths", "cost",
                                                       "cluster ER"});
  for (const double frac : fracs) {
    const double budget = frac * total_cost(w);
    const core::Selection sel = coord.select(budget);
    const double er = coord.evaluate(sel.paths);
    std::vector<std::string> row{fmt(frac, 2), std::to_string(sel.size()),
                                 fmt(sel.cost, 0),
                                 service::format_double(er)};
    if (verify) {
      // The merge contract: the cluster answer must be *bitwise* the
      // single-node kernel answer — same paths, same objective bits,
      // same ER bits.
      const core::Selection local =
          core::rome(*w.system, w.costs, budget, coord.engine());
      const double local_er = coord.engine().evaluate(sel.paths);
      const bool match = local.paths == sel.paths &&
                         local.objective == sel.objective &&
                         local_er == er;
      all_match = all_match && match;
      row.push_back(match ? "bitwise" : "MISMATCH");
    }
    table.add_row(std::move(row));
  }
  table.print(out);
  coord.stop_heartbeats();

  const auto m = coord.metrics();
  out << "\nworkers alive " << coord.alive_workers() << "/"
      << coord.worker_count() << ", failovers " << coord.failovers()
      << ", rpc rounds " << m.requests << " (" << m.errors << " errors)\n";
  if (verify) {
    if (!all_match) {
      out << "MISMATCH: cluster result differs from single-node kernel\n";
      return 1;
    }
    out << "verified: cluster selections and ER bitwise identical to "
           "single-node\n";
  }
  return 0;
}

int cmd_client(Flags& flags, std::istream& in, std::ostream& out) {
  const std::string host = flags.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 7070));
  const double timeout = flags.get_double("timeout", 60.0);
  const std::string request = flags.get_string("request", "");

  service::TcpClient client(host, port, timeout);
  if (!request.empty()) {
    out << client.call_line(request) << "\n";
    return 0;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out << client.call_line(line) << "\n";
  }
  return 0;
}

int cmd_fuzz(Flags& flags, std::ostream& out) {
  testkit::FaultPlan fault;
  fault.probbound_deflate = flags.get_double("inject-probbound", 0.0);
  fault.sliced_er_inflate = flags.get_double("inject-sliced-er", 0.0);

  if (flags.get_bool("list", false)) {
    flags.finish();
    for (const testkit::Check& c : testkit::all_checks()) {
      out << c.name << " (stride " << c.stride << "): " << c.summary
          << "\n";
    }
    return 0;
  }

  const std::string replay = flags.get_string("replay", "");
  if (!replay.empty()) {
    flags.finish();
    const testkit::Repro repro = testkit::load_repro(replay);
    out << "replaying " << repro.check << " on " << repro.instance.origin
        << " (" << repro.instance.path_count() << " paths, "
        << repro.instance.link_count() << " links, seed "
        << repro.instance.check_seed << ")\n";
    const testkit::CheckResult result =
        testkit::replay_repro(repro, fault);
    if (result.passed) {
      out << "PASS: the check no longer fails on this instance\n";
      return 0;
    }
    out << "FAIL: " << result.message << "\n";
    return 1;
  }

  testkit::FuzzConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.cases = static_cast<std::size_t>(flags.get_int("cases", 1000));
  config.minutes = flags.get_double("minutes", 0.0);
  config.out_dir = flags.get_string("out", "");
  config.max_failures =
      static_cast<std::size_t>(flags.get_int("max-failures", 1));
  config.shrink_failures = !flags.get_bool("no-shrink", false);
  config.fault = fault;
  const std::string checks_csv = flags.get_string("checks", "");
  {
    std::istringstream in(checks_csv);
    std::string token;
    while (std::getline(in, token, ',')) {
      if (!token.empty()) config.checks.push_back(token);
    }
  }
  flags.finish();

  const testkit::FuzzReport report = testkit::run_fuzz(config, &out);

  TablePrinter table({"check", "runs"});
  for (const auto& [name, runs] : report.per_check) {
    table.add_row({name, std::to_string(runs)});
  }
  table.print(out);
  out << report.cases_run << " cases, " << report.checks_run
      << " check executions in " << report.seconds << "s";
  if (report.timed_out) out << " (stopped at the --minutes cap)";
  out << "\n";
  if (report.ok()) {
    out << "OK: no invariant violations\n";
    return 0;
  }
  for (const testkit::FuzzFailure& f : report.failures) {
    out << "FAILURE " << f.check << " (case seed " << f.case_seed
        << ", shrunk to " << f.instance.path_count() << " paths / "
        << f.instance.link_count() << " links in " << f.shrink_attempts
        << " attempts): " << f.result.message << "\n";
  }
  return 1;
}

int dispatch(int argc, char** argv, std::ostream& out) {
  if (argc < 2) {
    print_usage(out);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "help") {
    print_usage(out);
    return 0;
  }
  Flags flags(argc - 1, argv + 1);
  int rc;
  if (command == "topology") {
    rc = cmd_topology(flags, out);
  } else if (command == "select") {
    rc = cmd_select(flags, out);
  } else if (command == "evaluate") {
    rc = cmd_evaluate(flags, out);
  } else if (command == "learn") {
    rc = cmd_learn(flags, out);
  } else if (command == "localize") {
    rc = cmd_localize(flags, out);
  } else if (command == "localize-node") {
    rc = cmd_localize_node(flags, out);
  } else if (command == "infer") {
    rc = cmd_infer(flags, out);
  } else if (command == "pipeline") {
    rc = cmd_pipeline(flags, out);
  } else if (command == "serve") {
    rc = cmd_serve(flags, out);
  } else if (command == "client") {
    rc = cmd_client(flags, std::cin, out);
  } else if (command == "cluster-serve") {
    rc = cmd_cluster_serve(flags, out);
  } else if (command == "cluster") {
    rc = cmd_cluster(flags, out);
  } else if (command == "fuzz") {
    rc = cmd_fuzz(flags, out);
  } else {
    out << "unknown command: " << command << "\n";
    print_usage(out);
    return 1;
  }
  flags.finish();
  return rc;
}

}  // namespace rnt::cli
