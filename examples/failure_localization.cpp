// Failure localization scenario — the secondary benefit the paper notes in
// its Section II example: with a robust path selection, the *pattern* of
// failed probes localizes the failed link.
//
// The example selects path sets with RoMe and SelectPath at the same
// budget, injects single-link failures drawn from the failure model, and
// compares how often each selection pins down the culprit exactly
// (tomo/localization.h provides the inference).
#include <iostream>
#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "exp/workload.h"
#include "tomo/localization.h"

int main() {
  using namespace rnt;

  exp::WorkloadSpec spec;
  spec.topology = graph::IspTopology::kAS1755;
  spec.candidate_paths = 200;
  spec.failure_intensity = 5.0;
  spec.seed = 11;
  const exp::Workload w = exp::make_workload(spec);

  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = 0.15 * w.costs.subset_cost(*w.system, all);
  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
  Rng sp_rng(12);
  const auto sp_sel =
      core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);
  std::cout << "monitoring " << w.topology_name << " at budget 15%: RoMe "
            << rome_sel.size() << " paths, SelectPath " << sp_sel.size()
            << " paths\n\n";

  auto report = [&](const char* name, const std::vector<std::size_t>& paths) {
    Rng rng = w.eval_rng();
    const auto score =
        tomo::score_localization(*w.system, paths, *w.failures, 300, rng);
    std::cout << name << " over " << score.trials
              << " injected single-link failures:\n";
    std::cout << "  localized exactly:    " << score.exact << " ("
              << 100.0 * score.exact_fraction() << "%)\n";
    std::cout << "  ambiguous candidates: " << score.ambiguous
              << " (mean candidate-set size " << score.mean_candidates
              << ")\n";
    std::cout << "  invisible to probes:  " << score.invisible
              << " (failed link on no selected path)\n\n";
  };
  report("RoMe", rome_sel.paths);
  report("SelectPath", sp_sel.paths);

  // One concrete trace, as in the paper's example: fail the most
  // failure-prone link and show the inference.
  std::size_t worst = 0;
  for (std::size_t l = 1; l < w.graph.edge_count(); ++l) {
    if (w.failures->probability(l) > w.failures->probability(worst)) {
      worst = l;
    }
  }
  failures::FailureVector v(w.graph.edge_count(), false);
  v[worst] = true;
  const auto result =
      tomo::localize_single_failure(*w.system, rome_sel.paths, v);
  std::cout << "injecting failure of the most failure-prone link (l" << worst
            << "): ";
  if (result.exact() && result.candidates.front() == worst) {
    std::cout << "localized exactly from probe outcomes.\n";
  } else if (result.candidates.empty()) {
    std::cout << "no selected path crosses it (invisible).\n";
  } else {
    std::cout << "narrowed to " << result.candidates.size()
              << " candidate links.\n";
  }
  return 0;
}
