// NOC service session — the repeated-query regime the service layer is
// built for.
//
// A network operations center keeps a resident tomography service and
// re-plans its probing basis as the *estimated* link failure intensity
// drifts through the day (estimates oscillate, so earlier operating points
// recur).  Each re-planning round fires a burst of concurrent requests —
// robust selection at two budgets, an ER evaluation of the chosen basis,
// and a localization score — against the same deployed topology.  The
// workload cache absorbs the expensive topology/path-matrix/availability
// rebuilds: only the first visit to each intensity estimate builds, every
// revisit is a cache hit.
#include <future>
#include <iomanip>
#include <iostream>
#include <vector>

#include "service/service.h"

int main() {
  using namespace rnt;

  service::Service svc(service::ServiceConfig{.threads = 4,
                                              .cache_capacity = 8});

  // Morning ramp-up, midday incident, evening recovery: the NOC's failure
  // intensity estimate drifts up and back.  Values repeat, so the second
  // half of the session is served from cache.
  const std::vector<double> intensity_drift = {4.0, 5.0, 6.0, 5.0, 4.0};
  const char* workload = "as=AS1755 paths=200 seed=77";

  std::cout << "NOC service session on AS1755 (200 candidate paths), "
            << "re-planning as the failure estimate drifts\n\n";
  std::cout << std::left << std::setw(10) << "estimate" << std::setw(14)
            << "basis@8%" << std::setw(14) << "basis@15%" << std::setw(12)
            << "rank mean" << std::setw(12) << "localized" << "\n";

  for (double intensity : intensity_drift) {
    const std::string w =
        std::string(workload) + " intensity=" + std::to_string(intensity);

    // One re-planning burst: four requests in flight at once.
    auto lean = svc.submit_line("select " + w + " budget-frac=0.08");
    auto rich = svc.submit_line("select " + w + " budget-frac=0.15");
    auto robust = svc.submit_line("er-eval " + w +
                                  " budget-frac=0.08 scenarios=100");
    auto localize = svc.submit_line("localize " + w +
                                    " budget-frac=0.08 scenarios=100");

    const service::Response lean_r = lean.get();
    const service::Response rich_r = rich.get();
    const service::Response robust_r = robust.get();
    const service::Response localize_r = localize.get();
    for (const auto* r : {&lean_r, &rich_r, &robust_r, &localize_r}) {
      if (!r->ok) {
        std::cerr << "request failed: " << r->error << "\n";
        return 1;
      }
    }

    std::cout << std::setw(10) << intensity << std::setw(14)
              << (lean_r.at("selected") + " paths") << std::setw(14)
              << (rich_r.at("selected") + " paths") << std::setw(12)
              << robust_r.at("rank-mean").substr(0, 5) << std::setw(12)
              << (localize_r.at("exact") + "/" + localize_r.at("trials"))
              << "\n";
  }

  const auto cache = svc.cache_counters();
  const auto metrics = svc.metrics();
  std::cout << "\n" << metrics.requests << " requests, " << cache.misses
            << " workload builds, " << cache.hits
            << " served from cache (hit rate " << std::fixed
            << std::setprecision(2) << cache.hit_rate() << ") — "
            << "revisited failure estimates never rebuilt the path system\n";
  std::cout << "latency: mean " << std::setprecision(1)
            << metrics.latency_mean_ms << " ms, p99 "
            << metrics.latency_p99_ms << " ms over "
            << svc.pool_size() << " workers\n";
  return 0;
}
