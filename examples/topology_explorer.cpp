// Topology explorer — working with real topology files.
//
// Shows the I/O path a user with actual Rocketfuel (or any) edge-list data
// would take: load a file (here: a generated one, round-tripped through
// disk), print structural statistics, identify backbone nodes by degree and
// betweenness, and export the calibrated synthetic topologies for use by
// external tools.
//
// Usage: ./topology_explorer [path/to/edge_list.txt]
#include <cstdio>
#include <iostream>

#include "graph/centrality.h"
#include "graph/io.h"
#include "graph/isp_topology.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rnt;

  graph::Graph g(0);
  if (argc > 1) {
    g = graph::load_edge_list(argv[1]);
    std::cout << "loaded " << argv[1] << "\n";
  } else {
    // No file given: generate the paper's medium topology and round-trip it
    // through a temp file to demonstrate the format.
    Rng rng(7);
    g = graph::build_isp_topology(graph::IspTopology::kAS3257, rng);
    const std::string path = "/tmp/rnt_as3257.edges";
    graph::save_edge_list(g, path);
    g = graph::load_edge_list(path);
    std::cout << "generated AS3257-calibrated topology, round-tripped via "
              << path << "\n";
    std::remove(path.c_str());
  }

  std::cout << "nodes: " << g.node_count() << ", links: " << g.edge_count()
            << ", connected: " << (g.is_connected() ? "yes" : "no") << "\n";

  // Degree distribution summary.
  std::size_t max_deg = 0;
  std::size_t leaves = 0;
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    max_deg = std::max(max_deg, g.degree(n));
    if (g.degree(n) == 1) ++leaves;
  }
  std::cout << "mean degree: "
            << 2.0 * static_cast<double>(g.edge_count()) /
                   static_cast<double>(g.node_count())
            << ", max degree: " << max_deg << ", leaf nodes: " << leaves
            << "\n";

  // Backbone nodes: top 5 by betweenness and by degree.
  const auto by_c = graph::nodes_by_centrality(g);
  const auto by_d = graph::nodes_by_degree(g);
  const auto centrality = graph::betweenness_centrality(g);
  std::cout << "\ntop backbone nodes (betweenness):\n";
  for (std::size_t i = 0; i < 5 && i < by_c.size(); ++i) {
    std::cout << "  node " << by_c[i] << ": centrality "
              << centrality[by_c[i]] << ", degree " << g.degree(by_c[i])
              << "\n";
  }
  std::cout << "top hubs (degree):";
  for (std::size_t i = 0; i < 5 && i < by_d.size(); ++i) {
    std::cout << " " << by_d[i] << "(" << g.degree(by_d[i]) << ")";
  }
  std::cout << "\n";
  return 0;
}
