// ISP monitoring scenario — the paper's motivating deployment.
//
// A network operating center (NOC) monitors a Tier-1-like backbone
// (AS3257-scale) from edge monitors.  The NOC compares three monitoring
// plans at the same probing budget:
//
//   * SelectPath   — the failure-agnostic arbitrary basis of prior work,
//   * MatRoMe      — robust basis under the independence constraint,
//   * ProbRoMe     — budget-constrained robust selection (RoMe + ProbBound),
//
// and reports surviving rank and link identifiability under realistic
// power-law link failures, plus how much budget SelectPath needs to match
// ProbRoMe (the paper reports roughly 2x).
#include <iostream>
#include <numeric>

#include "core/expected_rank.h"
#include "core/matrome.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "exp/metrics.h"
#include "exp/workload.h"

int main() {
  using namespace rnt;

  // A medium ISP workload: AS3257-calibrated topology, 300 candidate paths,
  // paper cost model, Markopoulou failures.
  exp::WorkloadSpec spec;
  spec.topology = graph::IspTopology::kAS3257;
  spec.candidate_paths = 300;
  spec.failure_intensity = 5.0;
  spec.seed = 2026;
  const exp::Workload w = exp::make_workload(spec);
  std::cout << "ISP backbone " << w.topology_name << ": "
            << w.graph.node_count() << " routers, " << w.graph.edge_count()
            << " links, " << w.system->path_count()
            << " candidate monitor paths (rank " << w.system->full_rank()
            << ")\n\n";

  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double full_cost = w.costs.subset_cost(*w.system, all);
  const double budget = 0.4 * full_cost;
  std::cout << "probing budget: " << budget << " (40% of probing all paths)\n";

  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto prob_sel = core::rome(*w.system, w.costs, budget, engine);
  Rng sp_rng(1);
  const auto sp_sel =
      core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);
  const auto mat_sel = core::matrome(*w.system, *w.failures);

  auto report = [&](const char* name, const std::vector<std::size_t>& paths) {
    Rng rng = w.eval_rng();
    exp::EvalOptions opts;
    opts.scenarios = 150;
    opts.identifiability = true;
    const auto eval =
        exp::evaluate_selection(*w.system, paths, *w.failures, opts, rng);
    std::cout << "  " << name << ": " << paths.size() << " paths"
              << ", rank " << eval.rank.stats.mean() << " ± "
              << eval.rank.stats.stddev() << " (no-failure "
              << eval.no_failure_rank << ")"
              << ", identifiable links " << eval.identifiability.stats.mean()
              << "\n";
    return eval.rank.stats.mean();
  };

  std::cout << "\nunder failures (150 sampled scenarios):\n";
  const double prob_rank = report("ProbRoMe  ", prob_sel.paths);
  report("SelectPath", sp_sel.paths);
  report("MatRoMe   ", mat_sel.paths);

  // How much budget does SelectPath need to match ProbRoMe's rank?
  std::cout << "\nbudget SelectPath needs to match ProbRoMe's rank "
            << prob_rank << ":\n";
  for (double frac : {0.4, 0.6, 0.8, 1.0}) {
    Rng rng2(2);
    const auto sel =
        core::select_path_budgeted(*w.system, w.costs, frac * full_cost, rng2);
    Rng eval_rng = w.eval_rng();
    RunningStats stats;
    for (int s = 0; s < 150; ++s) {
      stats.add(static_cast<double>(
          w.system->surviving_rank(sel.paths, w.failures->sample(eval_rng))));
    }
    std::cout << "  budget " << frac * 100 << "%: rank " << stats.mean()
              << (stats.mean() >= prob_rank ? "  <-- matches" : "") << "\n";
  }
  return 0;
}
