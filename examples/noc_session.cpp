// NOC session — the full measurement loop at packet granularity.
//
// Runs a robust selection through the discrete-event probe simulator for a
// working day of 5-minute epochs: probes traverse links with real delays,
// die at failed links, report back to the NOC, and each epoch's surviving
// measurements drive per-link delay estimation.  Compares the operational
// statistics (delivery rate, links estimated, wire bytes) of the robust
// selection against the SelectPath baseline at the same budget.
#include <iostream>
#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "exp/workload.h"
#include "sim/monitoring_session.h"

int main() {
  using namespace rnt;

  exp::WorkloadSpec spec;
  spec.topology = graph::IspTopology::kAS1755;
  spec.candidate_paths = 200;
  spec.failure_intensity = 5.0;
  spec.seed = 77;
  const exp::Workload w = exp::make_workload(spec);

  Rng truth_rng(78);
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), truth_rng, 1.0, 8.0);

  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = 0.12 * w.costs.subset_cost(*w.system, all);

  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
  Rng sp_rng(79);
  const auto sp_sel =
      core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);

  std::cout << "NOC monitoring " << w.topology_name << " ("
            << w.graph.edge_count() << " links), budget 12%, one day of "
            << "5-minute epochs (288 epochs)\n\n";

  auto run = [&](const char* name, const std::vector<std::size_t>& paths) {
    sim::MonitoringSession session(*w.system, truth, *w.failures, paths);
    Rng rng(80);
    session.run(288, rng);
    const sim::SessionReport& r = session.report();
    std::cout << name << " (" << paths.size() << " paths/epoch):\n";
    std::cout << "  probe delivery rate:   "
              << 100.0 * r.delivery_rate.mean() << "% (min "
              << 100.0 * r.delivery_rate.min() << "%)\n";
    std::cout << "  link delays estimated: " << r.links_estimated.mean()
              << " of " << w.graph.edge_count() << " per epoch (min "
              << r.links_estimated.min() << ")\n";
    std::cout << "  estimation error:      " << r.estimation_error.mean()
              << " ms (router processing bias: 0.1 ms/hop)\n";
    std::cout << "  epoch duration:        " << r.epoch_duration_ms.mean()
              << " ms mean\n";
    std::cout << "  wire traffic:          "
              << static_cast<double>(r.total_bytes) / (1024.0 * 1024.0)
              << " MiB/day\n\n";
  };
  run("RoMe selection      ", rome_sel.paths);
  run("SelectPath selection", sp_sel.paths);
  return 0;
}
