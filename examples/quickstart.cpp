// Quickstart — the library's public API in ~60 lines.
//
//   1. Build (or load) a topology.
//   2. Place monitors and generate candidate probe paths.
//   3. Describe probing costs and the link failure model.
//   4. Select a robust path set with RoMe (ProbBound engine).
//   5. Measure how the selection holds up under sampled failures.
//
// Run:  ./quickstart
#include <iostream>
#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "exp/metrics.h"
#include "failures/failure_model.h"
#include "graph/isp_topology.h"
#include "tomo/cost_model.h"
#include "tomo/monitors.h"
#include "util/rng.h"

int main() {
  using namespace rnt;

  // 1. A small ISP-like topology (60 routers, 120 links).  Real edge-list
  //    files can be loaded with graph::load_edge_list instead.
  Rng rng(42);
  graph::Graph topology = graph::build_isp_like(60, 120, rng);
  std::cout << "topology: " << topology.node_count() << " nodes, "
            << topology.edge_count() << " links\n";

  // 2. Monitors at the edge; one shortest path per (source, destination).
  tomo::MonitorSet monitors;
  tomo::PathSystem system =
      tomo::build_path_system(topology, /*target_paths=*/80, rng, &monitors);
  std::cout << "candidate paths: " << system.path_count()
            << " (rank " << system.full_rank() << ")\n";

  // 3. The paper's cost model (100/hop + 0-or-300 NOC access cost) and the
  //    Markopoulou power-law failure model, scaled up for a vivid demo.
  tomo::CostModel costs = tomo::CostModel::paper_model(monitors, rng);
  failures::FailureModel failure_model =
      failures::markopoulou_model(topology.edge_count(), rng,
                                  /*intensity=*/6.0);
  std::cout << "expected concurrent link failures per epoch: "
            << failure_model.expected_failures() << "\n";

  // 4. Budget = 40% of probing everything; select with RoMe + ProbBound.
  std::vector<std::size_t> all(system.path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = 0.4 * costs.subset_cost(system, all);
  core::ProbBoundEr engine(system, failure_model);
  const core::Selection robust = core::rome(system, costs, budget, engine);
  std::cout << "RoMe selected " << robust.size() << " paths, cost "
            << robust.cost << " / budget " << budget << "\n";

  // 5. How does it hold up when links actually fail?
  exp::EvalOptions opts;
  opts.scenarios = 200;
  opts.identifiability = true;
  Rng eval_rng(7);
  const exp::SelectionEvaluation eval =
      exp::evaluate_selection(system, robust.paths, failure_model, opts,
                              eval_rng);
  std::cout << "no-failure rank: " << eval.no_failure_rank
            << ", rank under failures: " << eval.rank.stats.mean() << " ± "
            << eval.rank.stats.stddev() << "\n";
  std::cout << "identifiable links under failures: "
            << eval.identifiability.stats.mean() << " of "
            << topology.edge_count() << "\n";
  return 0;
}
