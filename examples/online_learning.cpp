// Online learning scenario — monitoring without a failure model.
//
// A NOC that has just deployed monitors has no historical failure
// statistics.  LSR learns per-path availabilities from its own probes while
// it monitors: each epoch it selects a path set under the probing budget,
// observes which probes came back, and updates its estimates.  This example
// traces the learning process and compares the learned selection to the
// clairvoyant one.
#include <iostream>
#include <numeric>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "exp/workload.h"
#include "learning/lsr.h"
#include "learning/simulator.h"

int main() {
  using namespace rnt;

  exp::WorkloadSpec spec;
  spec.topology = graph::IspTopology::kAS1755;
  spec.candidate_paths = 80;
  spec.failure_intensity = 6.0;
  spec.seed = 99;
  const exp::Workload w = exp::make_workload(spec);

  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = 0.35 * w.costs.subset_cost(*w.system, all);
  std::cout << "learning to monitor " << w.topology_name << " with "
            << w.system->path_count() << " candidate paths, budget " << budget
            << ", no prior failure statistics\n\n";

  learning::Lsr learner(*w.system, w.costs,
                        learning::LsrConfig{.budget = budget});
  Rng rng(123);

  // Trace average reward in blocks of epochs to show learning progress.
  const std::size_t blocks = 6;
  const std::size_t block_epochs = 50;
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto result = learning::run_lsr(learner, *w.system, *w.failures,
                                          block_epochs, rng);
    std::cout << "epochs " << b * block_epochs + 1 << "-"
              << (b + 1) * block_epochs << ": avg reward (surviving rank) "
              << result.cumulative_reward / static_cast<double>(block_epochs)
              << (learner.in_initialization() ? "  [still initializing]" : "")
              << "\n";
  }

  // Compare the learned selection with the clairvoyant one.
  const auto learned = learner.final_selection();
  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto clairvoyant = core::rome(*w.system, w.costs, budget, engine);

  Rng eval_rng(321);
  const double s_learned = learning::estimate_expected_reward(
      *w.system, learned.paths, *w.failures, 1000, eval_rng);
  const double s_clair = learning::estimate_expected_reward(
      *w.system, clairvoyant.paths, *w.failures, 1000, eval_rng);
  std::cout << "\nafter " << learner.epoch() << " epochs:\n";
  std::cout << "  LSR learned selection:      expected surviving rank "
            << s_learned << " (" << learned.size() << " paths)\n";
  std::cout << "  clairvoyant (model known):  expected surviving rank "
            << s_clair << " (" << clairvoyant.size() << " paths)\n";
  std::cout << "  LSR reached "
            << (s_clair > 0 ? 100.0 * s_learned / s_clair : 100.0)
            << "% of clairvoyant performance\n";
  return 0;
}
