// Ablation — monitor placement strategy.
//
// The paper places monitors uniformly at random.  This ablation compares
// random placement against high-degree and high-betweenness placement at
// the same monitor count and budget, scoring the surviving rank of
// ProbRoMe's selection.  Centrality-heavy placements concentrate candidate
// paths on the backbone (shared links), which tends to *reduce* robust
// diversity — placement is a real design lever for tomography systems.
#include <algorithm>
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "graph/centrality.h"
#include "graph/isp_topology.h"
#include "tomo/monitors.h"

namespace rnt::bench {
namespace {

/// Splits the first 2*n nodes of `ranked` alternately into sources and
/// destinations.
tomo::MonitorSet split_ranked(const std::vector<graph::NodeId>& ranked,
                              std::size_t per_side) {
  tomo::MonitorSet m;
  for (std::size_t i = 0; i < 2 * per_side && i < ranked.size(); ++i) {
    (i % 2 == 0 ? m.sources : m.destinations).push_back(ranked[i]);
  }
  return m;
}

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto per_side = static_cast<std::size_t>(
      flags.get_int("monitors", opts.full ? 16 : 10));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 300 : 120));
  const double budget_frac = flags.get_double("budget-frac", 0.12);
  print_header("Ablation: monitor placement strategy (" + topology + ")",
               opts);

  Rng rng(opts.seed);
  const graph::Graph g =
      graph::build_isp_topology(graph::parse_isp_topology(topology), rng);
  const failures::FailureModel model =
      failures::markopoulou_model(g.edge_count(), rng, 5.0);

  struct Strategy {
    std::string name;
    tomo::MonitorSet monitors;
  };
  std::vector<Strategy> strategies;
  strategies.push_back(
      {"random", tomo::pick_monitors(g, per_side, per_side, rng)});
  strategies.push_back(
      {"high-degree", split_ranked(graph::nodes_by_degree(g), per_side)});
  strategies.push_back({"high-betweenness",
                        split_ranked(graph::nodes_by_centrality(g), per_side)});
  // Low-centrality placement: network edge, where monitors usually live.
  auto by_centrality = graph::nodes_by_centrality(g);
  std::reverse(by_centrality.begin(), by_centrality.end());
  strategies.push_back({"low-betweenness", split_ranked(by_centrality,
                                                        per_side)});

  TablePrinter table({"placement", "candidates", "rank(all)",
                      "ProbRoMe rank", "rank std"});
  for (const Strategy& s : strategies) {
    const auto candidates = tomo::generate_candidate_paths(g, s.monitors);
    if (candidates.empty()) {
      table.add_row({s.name, "0", "0", "-", "-"});
      continue;
    }
    tomo::PathSystem system(g.edge_count(), candidates);
    Rng cost_rng(opts.seed * 3);
    const tomo::CostModel costs =
        tomo::CostModel::paper_model(s.monitors, cost_rng);
    std::vector<std::size_t> all(system.path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const double budget = budget_frac * costs.subset_cost(system, all);

    core::ProbBoundEr engine(system, model);
    const auto sel = core::rome(system, costs, budget, engine);
    RunningStats stats;
    Rng eval(opts.seed * 5);
    for (std::size_t i = 0; i < scenarios; ++i) {
      const auto v = model.sample(eval);
      stats.add(static_cast<double>(system.surviving_rank(sel.paths, v)));
    }
    table.add_row({s.name, std::to_string(system.path_count()),
                   std::to_string(system.full_rank()), fmt(stats.mean(), 2),
                   fmt(stats.stddev(), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
