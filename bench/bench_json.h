// Machine-readable benchmark reports (BENCH_*.json).
//
// A report separates two kinds of numbers:
//
//  * "metrics" — absolute latency samples (ops/sec, p50/p95 microseconds
//    per call) of one named operation.  Machine-dependent; recorded for
//    humans and trend dashboards, not gated by default.
//  * "ratios" — dimensionless comparisons between two metrics measured in
//    the same process on the same machine (e.g. kernel evaluate ops/sec
//    over scenario evaluate ops/sec).  Machine-independent up to noise;
//    tools/bench_compare gates CI on these against a committed baseline.
//
// docs/BENCHMARKS.md describes how to run, read and re-baseline reports.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "util/json.h"

namespace rnt::bench {

/// One measured operation: throughput plus per-call latency quantiles.
struct LatencySample {
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  std::size_t iterations = 0;
};

/// p-th quantile (linear interpolation) of an already-sorted sample.
inline double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Times repeated calls of `fn` until both floors are met, then reports
/// throughput and per-call quantiles.  A few untimed warmup calls absorb
/// first-touch effects (page faults, lazy caches).
template <typename Fn>
LatencySample measure(Fn&& fn, std::size_t min_iterations = 20,
                      double min_seconds = 0.2,
                      std::size_t max_iterations = 200000) {
  using clock = std::chrono::steady_clock;
  for (int warm = 0; warm < 3; ++warm) fn();
  std::vector<double> us;
  us.reserve(min_iterations);
  double total = 0.0;
  while ((us.size() < min_iterations || total < min_seconds) &&
         us.size() < max_iterations) {
    const auto begin = clock::now();
    fn();
    const auto end = clock::now();
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
            .count();
    us.push_back(seconds * 1e6);
    total += seconds;
  }
  std::sort(us.begin(), us.end());
  LatencySample sample;
  sample.iterations = us.size();
  sample.ops_per_sec = total > 0.0 ? static_cast<double>(us.size()) / total : 0.0;
  sample.p50_us = sorted_quantile(us, 0.50);
  sample.p95_us = sorted_quantile(us, 0.95);
  sample.p99_us = sorted_quantile(us, 0.99);
  return sample;
}

/// Accumulates config, metrics and ratios; serializes to the BENCH_*.json
/// schema.
class BenchReport {
 public:
  explicit BenchReport(std::string suite) : suite_(std::move(suite)) {
    config_ = util::Json::object();
    metrics_ = util::Json::object();
    ratios_ = util::Json::object();
  }

  void set_config(const std::string& key, double value) {
    config_.set(key, util::Json::number(value));
  }
  void set_config(const std::string& key, const std::string& value) {
    config_.set(key, util::Json::string(value));
  }

  void add_metric(const std::string& name, const LatencySample& sample) {
    util::Json entry = util::Json::object();
    entry.set("ops_per_sec", util::Json::number(sample.ops_per_sec));
    entry.set("p50_us", util::Json::number(sample.p50_us));
    entry.set("p95_us", util::Json::number(sample.p95_us));
    entry.set("p99_us", util::Json::number(sample.p99_us));
    entry.set("iterations",
              util::Json::number(static_cast<double>(sample.iterations)));
    metrics_.set(name, std::move(entry));
  }

  void add_ratio(const std::string& name, double value) {
    ratios_.set(name, util::Json::number(value));
  }

  util::Json to_json() const {
    util::Json report = util::Json::object();
    report.set("suite", util::Json::string(suite_));
    report.set("schema_version", util::Json::number(1));
    report.set("config", config_);
    report.set("metrics", metrics_);
    report.set("ratios", ratios_);
    return report;
  }

  void write(const std::string& path) const {
    util::write_file(path, to_json().dump());
  }

 private:
  std::string suite_;
  util::Json config_;
  util::Json metrics_;
  util::Json ratios_;
};

}  // namespace rnt::bench
