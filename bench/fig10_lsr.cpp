// Figure 10 — performance of the reinforcement learning approach: average
// surviving rank of the path set chosen by LSR after 500 and 1000 epochs,
// compared to the clairvoyant ProbRoMe (failure distribution known) and the
// SelectPath baseline, as the budget varies (paper: AS3257, 400 candidate
// paths).
//
// Expected shape: LSR closes most of the gap to ProbRoMe, improves with
// more epochs, and beats SelectPath at every budget.
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "learning/lsr.h"
#include "learning/simulator.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS3257" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", 400));
  const auto checkpoint1 = static_cast<std::size_t>(
      flags.get_int("epochs-1", 500));
  const auto checkpoint2 = static_cast<std::size_t>(
      flags.get_int("epochs-2", 1000));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 500 : 300));
  print_header("Fig 10: LSR vs clairvoyant ProbRoMe vs SelectPath (" +
                   topology + ", " + std::to_string(paths) + " paths)",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;
  const exp::Workload w = exp::make_workload(spec);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double total_cost = w.costs.subset_cost(*w.system, all);

  core::ProbBoundEr engine(*w.system, *w.failures);

  TablePrinter table({"budget-frac",
                      "LSR-" + std::to_string(checkpoint1),
                      "LSR-" + std::to_string(checkpoint2), "ProbRoMe",
                      "SelectPath"});
  for (double frac : {0.05, 0.1, 0.18, 0.3}) {
    const double budget = frac * total_cost;

    learning::Lsr learner(*w.system, w.costs,
                          learning::LsrConfig{.budget = budget});
    Rng sim_rng(opts.seed * 97 + static_cast<std::uint64_t>(frac * 100));
    learning::run_lsr(learner, *w.system, *w.failures, checkpoint1, sim_rng);
    const auto lsr_sel_1 = learner.final_selection();
    learning::run_lsr(learner, *w.system, *w.failures,
                      checkpoint2 - checkpoint1, sim_rng);
    const auto lsr_sel_2 = learner.final_selection();

    const auto prob_sel = core::rome(*w.system, w.costs, budget, engine);
    Rng sp_rng(opts.seed * 311 + static_cast<std::uint64_t>(frac * 100));
    const auto sp_sel =
        core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);

    auto score = [&](const core::Selection& sel) {
      Rng rng(opts.seed * 499 + static_cast<std::uint64_t>(frac * 100));
      return learning::estimate_expected_reward(*w.system, sel.paths,
                                                *w.failures, scenarios, rng);
    };
    table.add_row({fmt(frac, 2), fmt(score(lsr_sel_1), 2),
                   fmt(score(lsr_sel_2), 2), fmt(score(prob_sel), 2),
                   fmt(score(sp_sel), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
