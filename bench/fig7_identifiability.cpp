// Figure 7 — average link identifiability (± std) vs. probing budget for
// ProbRoMe and SelectPath (paper: AS3257, 1600 candidate paths).
//
// Expected shape: identifiability grows with budget for both algorithms;
// ProbRoMe's margin over SelectPath is *larger* than for rank, because a
// small rank loss can destroy identifiability for many links at once.
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "tomo/identifiability.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS3257" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 1600 : 800));
  const auto monitor_sets = static_cast<std::size_t>(
      flags.get_int("monitor-sets", opts.full ? 5 : 2));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 500 : 50));
  print_header("Fig 7: link identifiability vs budget (" + topology + ")",
               opts);

  const std::vector<double> budget_fractions = {0.02, 0.05, 0.08,
                                                0.12, 0.18, 0.3};
  // fraction -> {ProbRoMe stats, SelectPath stats}
  std::vector<RunningStats> prob_stats(budget_fractions.size());
  std::vector<RunningStats> sp_stats(budget_fractions.size());

  for (std::size_t ms = 0; ms < monitor_sets; ++ms) {
    exp::WorkloadSpec spec;
    spec.topology = graph::parse_isp_topology(topology);
    spec.candidate_paths = paths;
    spec.seed = opts.seed + ms * 1000;
    spec.failure_intensity = 5.0;
    const exp::Workload w = exp::make_workload(spec);
    std::vector<std::size_t> all(w.system->path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const double total_cost = w.costs.subset_cost(*w.system, all);
    core::ProbBoundEr engine(*w.system, *w.failures);

    for (std::size_t b = 0; b < budget_fractions.size(); ++b) {
      const double budget = budget_fractions[b] * total_cost;
      const auto prob_sel = core::rome(*w.system, w.costs, budget, engine);
      Rng sp_rng(w.seed * 77 + b);
      const auto sp_sel =
          core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);
      Rng rng(w.seed * 131 + b);
      for (std::size_t s = 0; s < scenarios; ++s) {
        const auto v = w.failures->sample(rng);
        prob_stats[b].add(static_cast<double>(
            tomo::identifiable_count_under(*w.system, prob_sel.paths, v)));
        sp_stats[b].add(static_cast<double>(
            tomo::identifiable_count_under(*w.system, sp_sel.paths, v)));
      }
    }
  }

  TablePrinter table({"budget-frac", "ProbRoMe ident", "ProbRoMe std",
                      "SelectPath ident", "SelectPath std"});
  for (std::size_t b = 0; b < budget_fractions.size(); ++b) {
    table.add_row({fmt(budget_fractions[b], 2), fmt(prob_stats[b].mean(), 2),
                   fmt(prob_stats[b].stddev(), 2), fmt(sp_stats[b].mean(), 2),
                   fmt(sp_stats[b].stddev(), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
