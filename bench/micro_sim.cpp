// Micro-benchmarks for the discrete-event simulator: event queue
// throughput and probe-epoch cost at realistic scales.
#include <benchmark/benchmark.h>

#include <numeric>

#include "exp/workload.h"
#include "sim/event_queue.h"
#include "sim/probe_engine.h"

namespace rnt {
namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(static_cast<double>((i * 7919) % n), [&fired] { ++fired; });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(10000);

void BM_ProbeEpoch(benchmark::State& state) {
  const auto paths = static_cast<std::size_t>(state.range(0));
  const exp::Workload w =
      exp::make_custom_workload(87, 161, paths, /*seed=*/5, 5.0);
  Rng truth_rng(6);
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), truth_rng);
  sim::ProbeEngine engine(*w.system, truth);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng(7);
  const auto v = w.failures->sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_epoch(all, v, rng));
  }
}
BENCHMARK(BM_ProbeEpoch)->Arg(100)->Arg(200);

void BM_ProbeEpochWithJitter(benchmark::State& state) {
  const exp::Workload w = exp::make_custom_workload(87, 161, 100, 5, 5.0);
  Rng truth_rng(6);
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), truth_rng);
  sim::ProbeEngineConfig cfg;
  cfg.jitter_std_ms = 0.2;
  sim::ProbeEngine engine(*w.system, truth, cfg);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng(7);
  const auto v = w.failures->sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_epoch(all, v, rng));
  }
}
BENCHMARK(BM_ProbeEpochWithJitter);

}  // namespace
}  // namespace rnt
