// Extension — correlated failures (shared-risk link groups).
//
// The paper assumes independent link failures; this experiment breaks that
// assumption and measures the damage.  Links are grouped into SRLGs that
// fail together.  Three selectors are compared at the same budget:
//
//   * ProbRoMe(marginal)  — the paper's machinery fed the per-link marginal
//     probabilities (the natural mis-specification),
//   * MonteRoMe(SRLG)     — RoMe over a Monte Carlo ER engine whose
//     scenarios are drawn from the *correlated* model,
//   * SelectPath          — the failure-agnostic baseline.
//
// Expected shape: correlation hurts everyone; the correlated-scenario
// MonteRoMe holds up best as group probability grows, the marginal-fed
// ProbRoMe degrades toward (but stays above) SelectPath.
//
// --family picks the correlated model the sweep escalates:
//   srlg (default) — random shared-risk groups, sweep over group prob;
//   node           — NodeFailureModel, sweep over per-node failure prob;
//   cascade        — CascadeModel, sweep over the spread probability.
#include <memory>
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "failures/cascade.h"
#include "failures/node_failure.h"
#include "failures/srlg.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const std::string family = flags.get_string("family", "srlg");
  if (family != "srlg" && family != "node" && family != "cascade") {
    throw std::invalid_argument("--family must be srlg, node, or cascade");
  }
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 400 : 200));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 400 : 120));
  const auto mc_scenarios = static_cast<std::size_t>(
      flags.get_int("mc-scenarios", 50));
  const auto groups = static_cast<std::size_t>(flags.get_int("groups", 8));
  const auto group_size =
      static_cast<std::size_t>(flags.get_int("group-size", 6));
  const double budget_frac = flags.get_double("budget-frac", 0.12);
  print_header("Extension: selection under correlated failures, family=" +
                   family + " (" + topology + ")",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 2.0;  // Background failures; groups add more.
  const exp::Workload w = exp::make_workload(spec);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = budget_frac * w.costs.subset_cost(*w.system, all);

  // Per-family sweep: the escalating correlation knob and its levels.
  const std::string level_label = family == "srlg"     ? "group prob"
                                  : family == "node"   ? "node prob"
                                                       : "spread";
  const std::vector<double> levels =
      family == "srlg"   ? std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.4}
      : family == "node" ? std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.1}
                         : std::vector<double>{0.0, 0.1, 0.2, 0.4, 0.6};

  TablePrinter table({level_label, "ProbRoMe(marginal)", "MonteRoMe(family)",
                      "SelectPath"});
  for (const double level : levels) {
    Rng setup(opts.seed * 71 + static_cast<std::uint64_t>(level * 100));
    std::unique_ptr<failures::ScenarioFamily> correlated;
    if (family == "srlg") {
      correlated = std::make_unique<failures::SrlgFamily>(
          failures::make_random_srlg_model(*w.failures, groups, group_size,
                                           level, setup));
    } else if (family == "node") {
      correlated = std::make_unique<failures::NodeFailureModel>(
          failures::NodeFailureModel::from_graph(
              w.graph, *w.failures,
              std::vector<double>(w.graph.node_count(), level)));
    } else {
      correlated = std::make_unique<failures::CascadeModel>(
          failures::CascadeModel::from_graph(w.graph, *w.failures, level,
                                             /*decay=*/0.5));
    }
    // Cascade marginals have no tractable closed form on ISP-sized
    // graphs; the mis-specified ProbRoMe gets Monte Carlo marginals there.
    const failures::FailureModel marginal =
        family == "cascade"
            ? static_cast<const failures::CascadeModel&>(*correlated)
                  .approx_marginal_model(2000, setup)
            : correlated->marginal_model();

    // ProbRoMe on the marginal (independent) approximation.
    core::ProbBoundEr marg_engine(*w.system, marginal);
    const auto prob_sel = core::rome(*w.system, w.costs, budget, marg_engine);

    // MonteRoMe whose scenarios come from the true correlated model.
    Rng mc_rng = w.eval_rng();
    const auto mc_scen =
        failures::monte_carlo_mixture(*correlated, mc_scenarios, mc_rng);
    core::ScenarioErEngine family_engine(
        *w.system, mc_scen.scenarios, mc_scen.weights,
        "MC-" + correlated->name());
    const auto mc_sel = core::rome(*w.system, w.costs, budget, family_engine);

    Rng sp_rng(opts.seed * 13 + static_cast<std::uint64_t>(level * 100));
    const auto sp_sel =
        core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);

    // Evaluate all three under the true correlated model.
    RunningStats prob_stats, mc_stats, sp_stats;
    Rng rng(opts.seed * 17 + static_cast<std::uint64_t>(level * 100));
    for (std::size_t s = 0; s < scenarios; ++s) {
      const auto v = correlated->sample(rng);
      prob_stats.add(
          static_cast<double>(w.system->surviving_rank(prob_sel.paths, v)));
      mc_stats.add(
          static_cast<double>(w.system->surviving_rank(mc_sel.paths, v)));
      sp_stats.add(
          static_cast<double>(w.system->surviving_rank(sp_sel.paths, v)));
    }
    table.add_row({fmt(level, 2), fmt(prob_stats.mean(), 2),
                   fmt(mc_stats.mean(), 2), fmt(sp_stats.mean(), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
