// Figure 3 — rank of arbitrary bases vs. all candidate paths as the number
// of concurrent link failures grows (the paper's motivating experiment,
// AS1239 with 1600 candidate paths).
//
// Series: two arbitrary bases (random-order Cholesky bases, as prior work
// would select) and the full candidate set R_M.  Expected shape: all series
// decay with k; the full set dominates both bases; the two bases differ,
// showing that basis choice matters under failures.
#include "bench_common.h"
#include "core/select_path.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? (opts.full ? "AS1239" : "AS3257") : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 1600 : 800));
  const auto max_failures =
      static_cast<std::size_t>(flags.get_int("max-failures", 10));
  const auto trials = static_cast<std::size_t>(
      flags.get_int("trials", opts.full ? 100 : 20));
  print_header("Fig 3: rank of a basis under concurrent failures (" +
                   topology + ", " + std::to_string(paths) + " paths)",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  const exp::Workload w = exp::make_workload(spec);

  // Two arbitrary bases with different random scan orders.
  Rng basis_rng(opts.seed * 17 + 1);
  const auto basis1 = core::select_path_basis(*w.system, basis_rng);
  const auto basis2 = core::select_path_basis(*w.system, basis_rng);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});

  TablePrinter table({"failures", "basis-1 rank", "basis-2 rank",
                      "all-paths rank"});
  Rng rng = w.eval_rng();
  for (std::size_t k = 0; k <= max_failures; ++k) {
    RunningStats r1;
    RunningStats r2;
    RunningStats rall;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto v = w.failures->sample_exactly_k(k, rng);
      r1.add(static_cast<double>(w.system->surviving_rank(basis1.paths, v)));
      r2.add(static_cast<double>(w.system->surviving_rank(basis2.paths, v)));
      rall.add(static_cast<double>(w.system->surviving_rank(all, v)));
    }
    table.add_row({std::to_string(k), fmt(r1.mean(), 2), fmt(r2.mean(), 2),
                   fmt(rall.mean(), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
