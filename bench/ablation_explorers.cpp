// Ablation — exploration strategies for the online setting: the paper's
// LSR (combinatorial UCB) vs epsilon-greedy vs Thompson sampling, measured
// by cumulative reward during learning and by the quality of the final
// exploit selection.
#include <numeric>

#include "bench_common.h"
#include "learning/baselines.h"
#include "learning/lsr.h"
#include "learning/simulator.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 200 : 60));
  const auto epochs = static_cast<std::size_t>(
      flags.get_int("epochs", opts.full ? 1000 : 250));
  const double budget_frac = flags.get_double("budget-frac", 0.12);
  print_header("Ablation: exploration strategy, " + std::to_string(epochs) +
                   " epochs (" + topology + ")",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;
  const exp::Workload w = exp::make_workload(spec);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = budget_frac * w.costs.subset_cost(*w.system, all);

  learning::Lsr lsr(*w.system, w.costs, learning::LsrConfig{.budget = budget});
  learning::EpsilonGreedy eg01(*w.system, w.costs, budget, 0.1,
                               Rng(opts.seed * 3));
  learning::EpsilonGreedy eg03(*w.system, w.costs, budget, 0.3,
                               Rng(opts.seed * 5));
  learning::ThompsonSampling ts(*w.system, w.costs, budget,
                                Rng(opts.seed * 7));

  struct Entry {
    std::string name;
    learning::PathLearner* learner;
  };
  const std::vector<Entry> entries = {{"LSR (UCB)", &lsr},
                                      {"eps-greedy 0.1", &eg01},
                                      {"eps-greedy 0.3", &eg03},
                                      {"Thompson", &ts}};

  TablePrinter table({"strategy", "cumulative reward", "final score"});
  for (const Entry& e : entries) {
    Rng sim_rng(opts.seed * 31);  // Same failure stream for all learners.
    const auto result = learning::run_learner(*e.learner, *w.system,
                                              *w.failures, epochs, sim_rng);
    Rng eval_rng(opts.seed * 63);
    const double final_score = learning::estimate_expected_reward(
        *w.system, e.learner->final_selection().paths, *w.failures, 400,
        eval_rng);
    table.add_row({e.name, fmt(result.cumulative_reward, 1),
                   fmt(final_score, 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
