// Extension — end-to-end metric inference: ER-robust selection vs a
// size-matched naive subset, scored by what tomography actually recovers.
//
// Figures 5/7 argue robustness in rank/identifiability terms; this driver
// closes the loop (ROADMAP item 4): for each failure family, both
// selections probe the same noisy ground truth through src/infer's
// select → fail → measure → solve → score pipeline, and are compared on
// per-link MSE over identifiable links and on coverage.  The naive
// baseline probes the *same number of paths*, chosen uniformly at random,
// so any gap is placement, not budget.
//
// Two error metrics, because they answer different questions:
//
//  * conditional per-link MSE — error over each selection's *own*
//    identifiable links.  Selection-biased: a sparse naive subset
//    identifies only easy, well-covered links, so its conditional MSE can
//    narrowly beat a robust selection at some seeds.
//  * network MSE — error over *all* links, with unidentifiable links
//    charged at the prior-mean fallback an operator would have to report.
//    Both selections are scored on the same link set, so this is the
//    apples-to-apples end-to-end metric and the one CI gates.
//
// Expected shape: ProbRoMe holds more links identifiable under failures
// (coverage ratio > 1), so far fewer links fall back to the prior and its
// network MSE is decisively lower (network_mse_naive_over_rome > 1) across
// both the independent (Markopoulou) and the correlated (SRLG) family; at
// the default high-failure regime (--intensity 15, --budget-frac 0.2) its
// conditional MSE is lower as well.
//
// With --json the ratios land in BENCH_INFER.json; CI gates them against
// bench/baselines/BENCH_INFER.json via tools/bench_compare.  The ratios
// are statistical, not wall-clock, so they are machine-independent and
// exactly reproducible from the seed.  ext_estimation reports the same
// pipeline's budget sweep for one family; the two drivers share their
// scaffolding through bench_common.h.
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/rome.h"
#include "failures/srlg.h"
#include "infer/inference.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 400 : 200));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 300 : 120));
  const double noise = flags.get_double("noise-std", 0.05);
  // High-failure regime by default: robustness is what is being measured,
  // and at mild intensities both selections survive mostly intact.
  const double budget_frac = flags.get_double("budget-frac", 0.2);
  const double intensity = flags.get_double("intensity", 15.0);
  const std::string json_path = flags.get_string("json", "");
  print_header("Extension: end-to-end inference, ER-robust vs size-matched "
               "naive",
               opts);

  const exp::Workload w =
      make_topology_workload(opts, "AS1755", paths, intensity);
  const double budget = budget_frac * total_probing_cost(w);

  core::ProbBoundEr engine(*w.system, *w.failures);
  const core::Selection rome_sel =
      core::rome(*w.system, w.costs, budget, engine);
  Rng naive_rng(opts.seed * 41);
  const std::vector<std::size_t> naive =
      random_k_paths(naive_rng, w.system->path_count(), rome_sel.size());

  infer::InferenceConfig config;
  config.model =
      infer::parse_measurement_model(flags.get_string("model", "delay"));
  config.noise_std = noise;
  config.scenarios = scenarios;
  config.threads = opts.threads;
  const infer::GroundTruth truth = infer::campaign_truth(
      config.model, w.system->link_count(), opts.seed, config.truth);

  // Two failure families: the paper's independent model and the SRLG
  // extension's correlated one (same layout as ext_correlated_failures).
  Rng srlg_rng(opts.seed * 31);
  const failures::SrlgModel srlg = failures::make_random_srlg_model(
      *w.failures, /*group_count=*/8, /*group_size=*/4,
      /*group_probability=*/0.02, srlg_rng);
  const infer::ScenarioSampler srlg_sampler = [&srlg](Rng& rng) {
    return srlg.sample(rng);
  };
  const infer::ScenarioSampler independent_sampler = [&w](Rng& rng) {
    return w.failures->sample(rng);
  };
  const std::vector<std::pair<std::string, const infer::ScenarioSampler*>>
      families = {{"independent", &independent_sampler},
                  {"srlg", &srlg_sampler}};

  BenchReport report("ext_inference");
  report.set_config("topology", w.topology_name);
  report.set_config("paths", static_cast<double>(paths));
  report.set_config("scenarios", static_cast<double>(scenarios));
  report.set_config("noise_std", noise);
  report.set_config("budget_frac", budget_frac);
  report.set_config("model", infer::to_string(config.model));
  report.set_config("selected_paths", static_cast<double>(rome_sel.size()));
  report.set_config("seed", static_cast<double>(opts.seed));

  report.set_config("intensity", intensity);

  TablePrinter table({"family", "selection", "coverage", "ident links",
                      "per-link MSE", "network MSE", "per-link |err|",
                      "solved"});
  for (const auto& [family, sampler] : families) {
    const infer::InferenceReport rome_report = infer::run_inference(
        *w.system, rome_sel.paths, *sampler, truth, config, opts.seed);
    const infer::InferenceReport naive_report = infer::run_inference(
        *w.system, naive, *sampler, truth, config, opts.seed);
    for (const auto& [name, r] :
         {std::pair<const char*, const infer::InferenceReport*>{
              "prob-rome", &rome_report},
          {"naive", &naive_report}}) {
      table.add_row({family, name, fmt(r->coverage.mean(), 4),
                     fmt(r->identifiable.mean(), 1), fmt(r->mse.mean(), 6),
                     fmt(r->network_mse.mean(), 6),
                     fmt(r->mean_abs_error.mean(), 6),
                     std::to_string(r->solved)});
    }
    report.add_ratio("coverage_rome_over_naive_" + family,
                     rome_report.coverage.mean() /
                         naive_report.coverage.mean());
    report.add_ratio("network_mse_naive_over_rome_" + family,
                     naive_report.network_mse.mean() /
                         rome_report.network_mse.mean());
    report.add_ratio("mse_naive_over_rome_" + family,
                     naive_report.mse.mean() / rome_report.mse.mean());
    report.add_ratio("mae_naive_over_rome_" + family,
                     naive_report.mean_abs_error.mean() /
                         rome_report.mean_abs_error.mean());
  }
  table.print(std::cout, opts.csv);

  // One wall-clock sample for humans and trend dashboards: a full
  // independent-family campaign (never gated — machine-dependent).
  if (!json_path.empty()) {
    const LatencySample campaign = measure(
        [&] {
          (void)infer::run_inference(*w.system, rome_sel.paths,
                                     independent_sampler, truth, config,
                                     opts.seed);
        },
        /*min_iterations=*/3, /*min_seconds=*/0.2);
    report.add_metric("rome_campaign", campaign);
    report.write(json_path);
    if (!opts.csv) std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
