// Shared plumbing for the figure-reproduction drivers.
//
// Every driver prints the rows/series of one paper figure or table.
// Defaults are scaled down so the whole bench suite completes on a laptop
// core while preserving each figure's *shape* (who wins, by what factor,
// where curves cross); pass --full for the paper-scale parameters recorded
// in EXPERIMENTS.md, and --csv for machine-readable output.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/expected_rank.h"
#include "core/kernel_er.h"
#include "exp/metrics.h"
#include "exp/workload.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace rnt::bench {

/// Flags shared by all figure drivers.
struct CommonOptions {
  bool full = false;
  bool csv = false;
  bool golden = false;      ///< Deterministic output only: drivers drop
                            ///< wall-clock columns/lines so runs diff
                            ///< bitwise (tests/golden).
  std::uint64_t seed = 1;
  std::string topology;     ///< Empty = driver default.
  std::string engine = "mc";  ///< Scenario ER engine: "mc" (float
                              ///< elimination) or "kernel" (bit-packed
                              ///< ranks) — same sampler, bitwise-equal ER.
  std::string kernel = "auto";  ///< Rank kernel inside --engine=kernel:
                                ///< "auto" | "sliced" | "scalar" —
                                ///< bitwise-equal results, speed only.
  std::size_t threads = 0;  ///< Workers for parallel ER evaluation;
                            ///< 0 = hardware concurrency.
};

inline CommonOptions parse_common(Flags& flags) {
  CommonOptions opts;
  opts.full = flags.get_bool("full", false);
  opts.csv = flags.get_bool("csv", false);
  opts.golden = flags.get_bool("golden", false);
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.topology = flags.get_string("topology", "");
  opts.engine = flags.get_string("engine", "mc");
  opts.kernel = flags.get_string("kernel", "auto");
  opts.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  return opts;
}

/// Monte-Carlo-style scenario engine for --engine: both choices draw the
/// identical scenario set from `rng` (same sampler, same order), so their
/// evaluate()/gain() results are bitwise-equal — the kernel engine is just
/// faster.  `kernel` picks the rank kernel inside the kernel engine
/// (auto | sliced | scalar; same answers again).  Throws on unknown names
/// so typos fail loudly.
inline std::unique_ptr<core::ScenarioErEngine> make_scenario_engine(
    const std::string& engine, const tomo::PathSystem& system,
    const failures::FailureModel& model, std::size_t runs, Rng& rng,
    const std::string& kernel = "auto") {
  const core::KernelMode mode = core::parse_kernel_mode(kernel);
  if (engine == "mc") {
    if (mode != core::KernelMode::kAuto) {
      throw std::invalid_argument("--kernel only applies to --engine=kernel");
    }
    return std::make_unique<core::MonteCarloEr>(system, model, runs, rng);
  }
  if (engine == "kernel") {
    auto built = std::make_unique<core::KernelErEngine>(
        core::KernelErEngine::monte_carlo(system, model, runs, rng));
    built->set_kernel_mode(mode);
    return built;
  }
  throw std::invalid_argument("unknown --engine '" + engine +
                              "' (expected mc or kernel)");
}

/// Builds the calibrated topology workload the extension drivers share
/// (ext_estimation, ext_inference, ...): --topology with a per-driver
/// fallback, candidate-path count, and the paper's failure intensity.
inline exp::Workload make_topology_workload(const CommonOptions& opts,
                                            const std::string& fallback,
                                            std::size_t candidate_paths,
                                            double intensity = 5.0) {
  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(
      opts.topology.empty() ? fallback : opts.topology);
  spec.candidate_paths = candidate_paths;
  spec.seed = opts.seed;
  spec.failure_intensity = intensity;
  return exp::make_workload(spec);
}

/// Every candidate path index, ascending — the budget denominators and
/// "probe everything" baselines.
inline std::vector<std::size_t> all_paths_of(const tomo::PathSystem& system) {
  std::vector<std::size_t> all(system.path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return all;
}

/// Cost of probing every candidate path (budget fractions scale this).
inline double total_probing_cost(const exp::Workload& w) {
  return w.costs.subset_cost(*w.system, all_paths_of(*w.system));
}

/// Seeded uniform random subset of exactly `k` distinct paths — the
/// size-matched naive baseline a robust selection is compared against.
inline std::vector<std::size_t> random_k_paths(Rng& rng,
                                               std::size_t path_count,
                                               std::size_t k) {
  std::vector<std::size_t> all(path_count);
  std::iota(all.begin(), all.end(), std::size_t{0});
  rng.shuffle(all);
  all.resize(std::min(k, path_count));
  std::sort(all.begin(), all.end());
  return all;
}

inline void print_header(const std::string& title, const CommonOptions& opts) {
  if (opts.csv) return;
  std::cout << "=== " << title << " ===\n";
  std::cout << (opts.full ? "[paper-scale parameters]"
                          : "[reduced default parameters; --full for "
                            "paper scale]")
            << "\n\n";
}

/// Wraps driver main bodies with uniform error reporting.
template <typename Fn>
int run_driver(int argc, char** argv, Fn&& body) {
  try {
    Flags flags(argc, argv);
    const int rc = body(flags);
    flags.finish();
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace rnt::bench
