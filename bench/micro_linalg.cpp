// Micro-benchmarks for the linear algebra substrate: batch vs. incremental
// rank, the Cholesky independence test, SVD rank, and null-space extraction
// — the primitives whose costs dominate the figure experiments.
#include <benchmark/benchmark.h>

#include "linalg/cholesky.h"
#include "linalg/elimination.h"
#include "linalg/incremental_basis.h"
#include "linalg/rational.h"
#include "linalg/sparse.h"
#include "linalg/svd.h"
#include "tomo/monitors.h"
#include "graph/isp_topology.h"
#include "util/rng.h"

namespace rnt {
namespace {

/// A realistic path matrix: candidate paths on an ISP-like topology.
linalg::Matrix path_matrix(std::size_t paths, std::uint64_t seed = 7) {
  Rng rng(seed);
  graph::Graph g = graph::build_isp_like(87, 161, rng);
  tomo::PathSystem sys = tomo::build_path_system(g, paths, rng);
  return sys.matrix();
}

void BM_BatchRank(benchmark::State& state) {
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::rank(m));
  }
}
BENCHMARK(BM_BatchRank)->Arg(50)->Arg(100)->Arg(200);

void BM_IncrementalRank(benchmark::State& state) {
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    linalg::IncrementalBasis basis(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      basis.try_add(m.row(r));
    }
    benchmark::DoNotOptimize(basis.rank());
  }
}
BENCHMARK(BM_IncrementalRank)->Arg(50)->Arg(100)->Arg(200);

void BM_IndependenceQuery(benchmark::State& state) {
  // Cost of one is_independent() against a full basis — RoMe's inner loop.
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  linalg::IncrementalBasis basis(m.cols());
  for (std::size_t r = 0; r + 1 < m.rows(); ++r) {
    basis.try_add(m.row(r));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(basis.is_independent(m.row(m.rows() - 1)));
  }
}
BENCHMARK(BM_IndependenceQuery)->Arg(100)->Arg(200);

void BM_CholeskyBasis(benchmark::State& state) {
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::cholesky_basis(m));
  }
}
BENCHMARK(BM_CholeskyBasis)->Arg(50)->Arg(100)->Arg(200);

void BM_SvdRank(benchmark::State& state) {
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd_rank(m));
  }
}
BENCHMARK(BM_SvdRank)->Arg(50)->Arg(100);

void BM_NullSpace(benchmark::State& state) {
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::null_space(m));
  }
}
BENCHMARK(BM_NullSpace)->Arg(50)->Arg(100);

void BM_IdentifiableColumns(benchmark::State& state) {
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::identifiable_columns(m));
  }
}
BENCHMARK(BM_IdentifiableColumns)->Arg(50)->Arg(100);

void BM_DenseMatVec(benchmark::State& state) {
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  std::vector<double> x(m.cols(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.multiply(std::span<const double>(x)));
  }
}
BENCHMARK(BM_DenseMatVec)->Arg(100)->Arg(200);

void BM_SparseMatVec(benchmark::State& state) {
  const auto dense = path_matrix(static_cast<std::size_t>(state.range(0)));
  const auto m = linalg::SparseMatrix::from_dense(dense);
  std::vector<double> x(m.cols(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.multiply(x));
  }
}
BENCHMARK(BM_SparseMatVec)->Arg(100)->Arg(200);

void BM_ExactRationalRank(benchmark::State& state) {
  const auto m = path_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::exact_rank(m));
  }
}
BENCHMARK(BM_ExactRationalRank)->Arg(50);

}  // namespace
}  // namespace rnt
