// Figure 9 — link identifiability loss under failures vs. number of
// candidate paths, MatRoMe vs. SelectPath (see fig89_common.h).
#include "fig89_common.h"

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, [](rnt::Flags& flags) {
    return rnt::bench::run_loss_sweep(flags, /*identifiability=*/true);
  });
}
