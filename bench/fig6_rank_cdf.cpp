// Figure 6 — CDF of the surviving rank at a fixed budget (paper: AS3257,
// 1600 candidate paths, budget 80,000).
//
// Expected shape: the ProbRoMe CDF sits to the right of (stochastically
// dominates) MonteRoMe and SelectPath — a uniformly higher rank across
// failure scenarios, not just on average.
#include <algorithm>
#include <chrono>
#include <numeric>

#include "bench_common.h"
#include "bench_json.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS3257" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", 1600));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 500 : 200));
  const auto mc_runs = static_cast<std::size_t>(flags.get_int("mc-runs", 50));
  const double budget_frac = flags.get_double("budget-frac", 0.08);
  const auto cdf_points =
      static_cast<std::size_t>(flags.get_int("cdf-points", 12));
  const std::string json_path = flags.get_string("json", "");
  print_header("Fig 6: CDF of rank at fixed budget (" + topology + ")", opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;
  const exp::Workload w = exp::make_workload(spec);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = budget_frac * w.costs.subset_cost(*w.system, all);

  core::ProbBoundEr prob_engine(*w.system, *w.failures);
  Rng mc_rng = w.eval_rng();
  const auto mc_engine_ptr =
      make_scenario_engine(opts.engine, *w.system, *w.failures, mc_runs,
                           mc_rng, opts.kernel);
  const core::ScenarioErEngine& mc_engine = *mc_engine_ptr;

  const auto prob_sel = core::rome(*w.system, w.costs, budget, prob_engine);
  const auto mc_sel = core::rome(*w.system, w.costs, budget, mc_engine);
  Rng sp_rng(opts.seed * 77);
  const auto sp_sel =
      core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);

  EmpiricalDistribution prob_d;
  EmpiricalDistribution mc_d;
  EmpiricalDistribution sp_d;
  Rng rng = w.eval_rng();
  for (std::size_t s = 0; s < scenarios; ++s) {
    const auto v = w.failures->sample(rng);
    prob_d.add(static_cast<double>(w.system->surviving_rank(prob_sel.paths, v)));
    mc_d.add(static_cast<double>(w.system->surviving_rank(mc_sel.paths, v)));
    sp_d.add(static_cast<double>(w.system->surviving_rank(sp_sel.paths, v)));
  }

  // Shared x grid across the three series.
  const double lo =
      std::min({prob_d.quantile(0.0), mc_d.quantile(0.0), sp_d.quantile(0.0)});
  const double hi =
      std::max({prob_d.quantile(1.0), mc_d.quantile(1.0), sp_d.quantile(1.0)});
  TablePrinter table({"rank", "ProbRoMe CDF", "MonteRoMe CDF",
                      "SelectPath CDF"});
  for (std::size_t i = 0; i < cdf_points; ++i) {
    const double x = cdf_points == 1
                         ? hi
                         : lo + (hi - lo) * static_cast<double>(i) /
                                    static_cast<double>(cdf_points - 1);
    table.add_row({fmt(x, 1), fmt(prob_d.cdf(x), 3), fmt(mc_d.cdf(x), 3),
                   fmt(sp_d.cdf(x), 3)});
  }
  table.print(std::cout, opts.csv);
  if (!opts.csv) {
    std::cout << "\nmeans: ProbRoMe " << fmt(prob_d.mean(), 2) << ", MonteRoMe "
              << fmt(mc_d.mean(), 2) << ", SelectPath " << fmt(sp_d.mean(), 2)
              << "\n";
  }

  // ER of each selection under the shared MC scenario set, scored with the
  // multithreaded evaluator (--threads workers; bitwise-equal to the serial
  // evaluate() at any worker count).
  const auto t_er = std::chrono::steady_clock::now();
  const double prob_er = mc_engine.evaluate_parallel(prob_sel.paths,
                                                     opts.threads);
  const double mc_er = mc_engine.evaluate_parallel(mc_sel.paths, opts.threads);
  const double sp_er = mc_engine.evaluate_parallel(sp_sel.paths, opts.threads);
  const double er_sec = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_er)
                            .count();
  if (opts.golden) {
    // Deterministic ER table for the golden diff: pure function of (seed,
    // engine, parameters) — identical bytes at every --threads value.
    TablePrinter er_table({"algorithm", "MC ER"});
    er_table.add_row({"ProbRoMe", fmt(prob_er, 6)});
    er_table.add_row({"MonteRoMe", fmt(mc_er, 6)});
    er_table.add_row({"SelectPath", fmt(sp_er, 6)});
    er_table.print(std::cout, opts.csv);
  } else if (!opts.csv) {
    std::cout << "MC ER: ProbRoMe " << fmt(prob_er, 2) << ", MonteRoMe "
              << fmt(mc_er, 2) << ", SelectPath " << fmt(sp_er, 2) << " ("
              << fmt(er_sec, 3) << "s parallel eval)\n";
  }

  // --json: latency report for the selected engine on this figure's
  // workload (serial + parallel evaluate of the winning selection).
  if (!json_path.empty()) {
    BenchReport report("fig6_rank_cdf");
    report.set_config("topology", topology);
    report.set_config("paths", static_cast<double>(w.system->path_count()));
    report.set_config("engine", opts.engine);
    report.set_config("threads", static_cast<double>(opts.threads));
    report.add_metric("evaluate", measure([&] {
                        (void)mc_engine.evaluate(prob_sel.paths);
                      }));
    report.add_metric("evaluate_mt", measure([&] {
                        (void)mc_engine.evaluate_parallel(prob_sel.paths,
                                                          opts.threads);
                      }));
    report.write(json_path);
    if (!opts.csv) std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
