// Extension benchmark: open-loop load against the reactor front end,
// with a machine-readable BENCH_SERVICE.json report.
//
// One in-process ReactorServer, thousands of real loopback connections,
// and an *open-loop* generator: request arrival times are drawn from a
// seeded Poisson (or uniform) process and dispatched on schedule whether
// or not earlier requests have completed.  A closed-loop driver (send,
// wait, send) hides overload by slowing itself down to the server's pace;
// open-loop is the only shape that measures queueing honestly and avoids
// coordinated omission — latency is measured from the *scheduled* arrival
// instant, not from whenever the client got around to writing.
//
// Three phases:
//   1. connect  — open `--connections` sockets in bounded waves.
//   2. steady   — offered rate `--rate` for `--seconds`, round-robin over
//                 every connection; p50/p95/p99 and throughput reported.
//   3. overload — a pipelined burst far past the server's admission bound
//                 (`--burst` requests on each of `--burst-conns`
//                 connections in one write); the server must answer every
//                 single one — `ok` or structured `error overloaded:` —
//                 with nothing dropped or hung.
//
// Gated ratios (machine-independent contract checks; absolute throughput
// and quantiles are informational):
//   connect_success_over_attempted   every connection established
//   steady_answered_over_offered     every steady request answered
//   overload_answered_over_offered   every overload request answered
//   overload_shed_fraction           the admission queue actually shed
#include <poll.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "net/poller.h"
#include "service/reactor_server.h"
#include "util/rng.h"

namespace rnt {
namespace {

double now_s() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One generator-side connection: a non-blocking socket plus the FIFO of
/// scheduled-send instants for its outstanding requests (replies come
/// back in request order, so front() always matches the next reply).
struct Conn {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  bool want_write = false;
  std::deque<double> sent_s;
};

/// Per-phase accounting.
struct PhaseCounters {
  std::size_t offered = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;    ///< `error overloaded: ...` replies.
  std::size_t other = 0;   ///< Any other error reply (should stay 0).
  std::vector<double> latency_us;

  std::size_t answered() const { return ok + shed + other; }
};

class LoadGenerator {
 public:
  LoadGenerator(std::uint16_t port, std::size_t connections)
      : port_(port), poller_(net::make_poller()) {
    conns_.resize(connections);
  }

  ~LoadGenerator() {
    for (Conn& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
    }
  }

  /// Opens every connection in bounded waves (the listener's backlog is
  /// finite; a single SYN flood of thousands forces retransmit stalls).
  /// Returns the number established.
  std::size_t connect_all(std::size_t wave_size, double deadline_s) {
    std::size_t established = 0;
    for (std::size_t base = 0; base < conns_.size(); base += wave_size) {
      const std::size_t end = std::min(base + wave_size, conns_.size());
      std::vector<pollfd> wave;
      for (std::size_t i = base; i < end; ++i) {
        const int fd = open_nonblocking_connect();
        if (fd < 0) continue;
        conns_[i].fd = fd;
        wave.push_back(pollfd{fd, POLLOUT, 0});
      }
      const double give_up = now_s() + deadline_s;
      std::size_t done = 0;
      while (done < wave.size() && now_s() < give_up) {
        const int ready = ::poll(wave.data(), static_cast<nfds_t>(wave.size()),
                                 100);
        if (ready <= 0) continue;
        done = 0;
        for (const pollfd& p : wave) {
          if ((p.revents & (POLLOUT | POLLERR | POLLHUP)) != 0) ++done;
        }
      }
      for (std::size_t i = base; i < end; ++i) {
        if (conns_[i].fd < 0) continue;
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(conns_[i].fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          ::close(conns_[i].fd);
          conns_[i].fd = -1;
          continue;
        }
        poller_->add(conns_[i].fd, /*want_read=*/true, /*want_write=*/false);
        fd_to_index_[conns_[i].fd] = i;
        ++established;
      }
    }
    return established;
  }

  /// Open-loop phase: offers `total` requests at `rate`/s (exponential or
  /// uniform inter-arrival) round-robin over the connections, then drains
  /// until every reply landed or `drain_s` elapsed.
  void run_open_loop(PhaseCounters& counters, std::size_t total, double rate,
                     bool poisson, Rng& rng, double drain_s) {
    const double start = now_s();
    double next_arrival = start;
    std::size_t dispatched = 0;
    std::size_t rr = 0;
    while (dispatched < total) {
      const double now = now_s();
      while (dispatched < total && next_arrival <= now) {
        // Latency clock starts at the scheduled instant: if this loop
        // fell behind, the wait counts against the server's tail, not in
        // its favour (no coordinated omission).
        enqueue_request(conns_[next_live(rr)], next_arrival, counters);
        ++dispatched;
        next_arrival += poisson ? -std::log(1.0 - rng.uniform()) / rate
                                : 1.0 / rate;
      }
      pump(counters, /*timeout_ms=*/timeout_until(next_arrival));
    }
    drain(counters, drain_s);
  }

  /// Overload phase: `burst` pipelined requests on each of the first
  /// `burst_conns` connections, written in one batch per connection, then
  /// a drain.  Every request must come back answered.
  void run_burst(PhaseCounters& counters, std::size_t burst,
                 std::size_t burst_conns, double drain_s) {
    std::size_t used = 0;
    for (Conn& conn : conns_) {
      if (used >= burst_conns) break;
      if (conn.fd < 0) continue;
      const double now = now_s();
      for (std::size_t r = 0; r < burst; ++r) {
        enqueue_request(conn, now, counters);
      }
      ++used;
    }
    drain(counters, drain_s);
  }

  std::size_t outstanding() const { return outstanding_; }

 private:
  int open_nonblocking_connect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  std::size_t next_live(std::size_t& rr) {
    for (std::size_t step = 0; step < conns_.size(); ++step) {
      const std::size_t i = rr++ % conns_.size();
      if (conns_[i].fd >= 0) return i;
    }
    throw std::runtime_error("every generator connection died");
  }

  void enqueue_request(Conn& conn, double scheduled_s,
                       PhaseCounters& counters) {
    conn.out += "ping\n";
    conn.sent_s.push_back(scheduled_s);
    ++counters.offered;
    ++outstanding_;
    flush(conn);
  }

  static int timeout_until(double next_arrival) {
    const double ms = (next_arrival - now_s()) * 1000.0;
    if (ms <= 0.0) return 0;
    return static_cast<int>(std::min(ms, 10.0)) + 1;
  }

  void pump(PhaseCounters& counters, int timeout_ms) {
    poller_->wait(events_, timeout_ms);
    for (const net::PollEvent& event : events_) {
      const auto it = fd_to_index_.find(event.fd);
      if (it == fd_to_index_.end()) continue;
      Conn& conn = conns_[it->second];
      if (event.writable) flush(conn);
      if (event.readable || event.error) read_replies(conn, counters);
    }
  }

  void drain(PhaseCounters& counters, double drain_s) {
    const double deadline = now_s() + drain_s;
    while (outstanding_ > 0 && now_s() < deadline) {
      pump(counters, 10);
    }
  }

  void flush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        drop_conn(conn);
        return;
      }
      conn.out_off += static_cast<std::size_t>(n);
    }
    if (conn.out_off >= conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    }
    const bool want_write = conn.out_off < conn.out.size();
    if (want_write != conn.want_write) {
      conn.want_write = want_write;
      poller_->modify(conn.fd, /*want_read=*/true, want_write);
    }
  }

  void read_replies(Conn& conn, PhaseCounters& counters) {
    char chunk[16384];
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      drop_conn(conn);
      return;
    }
    if (n < 0) return;
    conn.in.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = conn.in.find('\n')) != std::string::npos) {
      const std::string line = conn.in.substr(0, newline);
      conn.in.erase(0, newline + 1);
      if (conn.sent_s.empty()) continue;  // Unsolicited line; ignore.
      counters.latency_us.push_back((now_s() - conn.sent_s.front()) * 1e6);
      conn.sent_s.pop_front();
      --outstanding_;
      if (line.rfind("ok", 0) == 0) {
        ++counters.ok;
      } else if (line.find("overloaded") != std::string::npos) {
        ++counters.shed;
      } else {
        ++counters.other;
      }
    }
  }

  void drop_conn(Conn& conn) {
    poller_->remove(conn.fd);
    fd_to_index_.erase(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
    // Outstanding requests on a dead connection will never be answered;
    // they stay counted against the answered/offered ratio, which is the
    // point — a dropped connection is a broken contract.
  }

  std::uint16_t port_;
  std::unique_ptr<net::Poller> poller_;
  std::vector<Conn> conns_;
  std::unordered_map<int, std::size_t> fd_to_index_;
  std::vector<net::PollEvent> events_;
  std::size_t outstanding_ = 0;
};

bench::LatencySample to_sample(PhaseCounters& counters, double elapsed_s) {
  std::sort(counters.latency_us.begin(), counters.latency_us.end());
  bench::LatencySample sample;
  sample.iterations = counters.latency_us.size();
  sample.ops_per_sec =
      elapsed_s > 0.0
          ? static_cast<double>(counters.answered()) / elapsed_s
          : 0.0;
  sample.p50_us = bench::sorted_quantile(counters.latency_us, 0.50);
  sample.p95_us = bench::sorted_quantile(counters.latency_us, 0.95);
  sample.p99_us = bench::sorted_quantile(counters.latency_us, 0.99);
  return sample;
}

int run(Flags& flags) {
  const std::size_t connections =
      static_cast<std::size_t>(flags.get_int("connections", 5000));
  const double rate = flags.get_double("rate", 2000.0);
  const double seconds = flags.get_double("seconds", 2.0);
  const std::string arrivals = flags.get_string("arrivals", "poisson");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 2));
  const std::size_t max_queue =
      static_cast<std::size_t>(flags.get_int("max-queue", 64));
  const std::size_t burst =
      static_cast<std::size_t>(flags.get_int("burst", 256));
  const std::size_t burst_conns =
      static_cast<std::size_t>(flags.get_int("burst-conns", 8));
  const double drain_s = flags.get_double("drain-seconds", 10.0);
  const std::string json_path = flags.get_string("json", "");
  const bool csv = flags.get_bool("csv", false);
  if (arrivals != "poisson" && arrivals != "uniform") {
    std::cerr << "error: --arrivals must be poisson or uniform\n";
    return 1;
  }

  service::ReactorServer server(service::ReactorServerConfig{
      .port = 0,
      .threads = threads,
      .cache_capacity = 2,
      .request_timeout_s = 30.0,
      .backlog = 1024,
      .max_queue = max_queue});
  std::thread runner([&server] { server.run(); });

  Rng rng(seed);
  LoadGenerator gen(server.port(), connections);

  const double connect_begin = now_s();
  const std::size_t established = gen.connect_all(/*wave_size=*/256,
                                                  /*deadline_s=*/10.0);
  const double connect_elapsed = now_s() - connect_begin;

  PhaseCounters steady;
  const std::size_t total =
      static_cast<std::size_t>(rate * seconds);
  const double steady_begin = now_s();
  gen.run_open_loop(steady, total, rate, arrivals == "poisson", rng, drain_s);
  const double steady_elapsed = now_s() - steady_begin;

  PhaseCounters overload;
  const double overload_begin = now_s();
  gen.run_burst(overload, burst, burst_conns, drain_s);
  const double overload_elapsed = now_s() - overload_begin;

  server.stop();
  runner.join();

  const auto ratio = [](std::size_t num, std::size_t den) {
    return den > 0 ? static_cast<double>(num) / static_cast<double>(den)
                   : 0.0;
  };

  bench::BenchReport report("ext_service_load");
  report.set_config("connections", static_cast<double>(connections));
  report.set_config("rate_per_sec", rate);
  report.set_config("seconds", seconds);
  report.set_config("arrivals", arrivals);
  report.set_config("seed", static_cast<double>(seed));
  report.set_config("server_threads", static_cast<double>(threads));
  report.set_config("max_queue", static_cast<double>(max_queue));
  report.set_config("burst", static_cast<double>(burst));
  report.set_config("burst_conns", static_cast<double>(burst_conns));
  report.set_config("transport", "loopback TCP, in-process reactor server");

  const bench::LatencySample steady_sample = to_sample(steady, steady_elapsed);
  const bench::LatencySample overload_sample =
      to_sample(overload, overload_elapsed);
  bench::LatencySample connect_sample;
  connect_sample.iterations = established;
  connect_sample.ops_per_sec =
      connect_elapsed > 0.0
          ? static_cast<double>(established) / connect_elapsed
          : 0.0;
  report.add_metric("connect", connect_sample);
  report.add_metric("steady", steady_sample);
  report.add_metric("overload_burst", overload_sample);

  report.add_ratio("connect_success_over_attempted",
                   ratio(established, connections));
  report.add_ratio("steady_answered_over_offered",
                   ratio(steady.answered(), steady.offered));
  report.add_ratio("overload_answered_over_offered",
                   ratio(overload.answered(), overload.offered));
  report.add_ratio("overload_shed_fraction",
                   ratio(overload.shed, overload.offered));

  TablePrinter table({"phase", "offered", "answered", "ok", "shed",
                      "ops/sec", "p50 us", "p95 us", "p99 us"});
  table.add_row({"connect", std::to_string(connections),
                 std::to_string(established), "-", "-",
                 fmt(connect_sample.ops_per_sec, 1), "-", "-", "-"});
  table.add_row({"steady", std::to_string(steady.offered),
                 std::to_string(steady.answered()),
                 std::to_string(steady.ok), std::to_string(steady.shed),
                 fmt(steady_sample.ops_per_sec, 1),
                 fmt(steady_sample.p50_us, 1), fmt(steady_sample.p95_us, 1),
                 fmt(steady_sample.p99_us, 1)});
  table.add_row({"overload", std::to_string(overload.offered),
                 std::to_string(overload.answered()),
                 std::to_string(overload.ok), std::to_string(overload.shed),
                 fmt(overload_sample.ops_per_sec, 1),
                 fmt(overload_sample.p50_us, 1),
                 fmt(overload_sample.p95_us, 1),
                 fmt(overload_sample.p99_us, 1)});
  table.print(std::cout, csv);

  if (!csv) {
    std::cout << "\nopen-loop contract: " << established << "/" << connections
              << " connections, steady answered "
              << fmt(100.0 * ratio(steady.answered(), steady.offered), 2)
              << "%, overload answered "
              << fmt(100.0 * ratio(overload.answered(), overload.offered), 2)
              << "% (shed "
              << fmt(100.0 * ratio(overload.shed, overload.offered), 2)
              << "% with a structured `overloaded` reply)\n";
  }
  if (!json_path.empty()) {
    report.write(json_path);
    if (!csv) std::cout << "wrote " << json_path << "\n";
  }

  // The contract itself, enforced here too so a bare run (no
  // bench_compare) still fails loudly on a dropped or hung request.
  if (established != connections || steady.answered() != steady.offered ||
      overload.answered() != overload.offered || overload.shed == 0 ||
      steady.other + overload.other != 0) {
    std::cerr << "FAIL: open-loop contract violated (dropped connections, "
                 "unanswered requests, or no shedding under overload)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rnt

int main(int argc, char** argv) {
  return rnt::bench::run_driver(
      argc, argv, [](rnt::Flags& flags) { return rnt::run(flags); });
}
