// Micro-benchmarks for the correctness harness itself: per-case cost of
// instance generation, the brute-force oracles, and one full check pass.
// These numbers size the fuzz loop — `rnt_cli fuzz` throughput is roughly
// the reciprocal of the full-check-pass time — and flag regressions that
// would silently shrink CI fuzz coverage within its wall-clock budget.
#include <benchmark/benchmark.h>

#include "testkit/checks.h"
#include "testkit/instance.h"
#include "testkit/oracles.h"

namespace rnt::testkit {
namespace {

void BM_GenerateInstance(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_instance(seed++));
  }
}
BENCHMARK(BM_GenerateInstance);

void BM_ExhaustiveErTableBuild(benchmark::State& state) {
  const TestInstance inst = generate_instance(7);
  for (auto _ : state) {
    ExhaustiveErTable table(inst);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_ExhaustiveErTableBuild);

void BM_ExhaustiveErQuery(benchmark::State& state) {
  // Amortized query cost over the memoized table: sweep all prefix masks.
  const TestInstance inst = generate_instance(7);
  const ExhaustiveErTable table(inst);
  const std::uint64_t full =
      (std::uint64_t{1} << inst.path_count()) - 1;
  std::uint64_t mask = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.er(mask));
    mask = mask == full ? 1 : ((mask << 1) | 1) & full;
  }
}
BENCHMARK(BM_ExhaustiveErQuery);

void BM_NaiveRank(benchmark::State& state) {
  const TestInstance inst = generate_instance(7);
  std::vector<std::size_t> all(inst.path_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_rank(dense_rows(inst, all)));
  }
}
BENCHMARK(BM_NaiveRank);

void BM_FullCheckPass(benchmark::State& state) {
  // One fuzz case end to end: every registered check on one instance
  // (the workload-cache check is stride-gated in the real loop but
  // included here, so this is an upper bound on per-case cost).
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const TestInstance inst = generate_instance(seed++);
    for (const Check& c : all_checks()) {
      if (!c.shrinkable) continue;  // Skips the cache check's rebuilds.
      benchmark::DoNotOptimize(run_check(c, inst));
    }
  }
}
BENCHMARK(BM_FullCheckPass);

}  // namespace
}  // namespace rnt::testkit
