// Shared implementation of Figures 8 and 9 — rank loss / identifiability
// loss under failures for MatRoMe vs. the original SelectPath, as the
// number of candidate paths grows (paper: AS1239, linear-independence
// constraint, unit path costs, budget = rank of the candidate set).
//
// Expected shape: MatRoMe's loss stays nearly flat as candidates increase
// (more candidates = more robust bases to choose from), while SelectPath's
// loss grows (more candidates = more arbitrary bases, picked blindly).
#pragma once

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/matrome.h"
#include "core/select_path.h"
#include "exp/metrics.h"

namespace rnt::bench {

/// Runs the Fig 8/9 sweep and prints one loss metric.
/// `identifiability` selects Fig 9's metric over Fig 8's rank loss.
inline int run_loss_sweep(Flags& flags, bool identifiability) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? (opts.full ? "AS1239" : "AS3257") : opts.topology;
  const auto monitor_sets = static_cast<std::size_t>(
      flags.get_int("monitor-sets", opts.full ? 5 : 2));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 500 : (identifiability ? 40 : 80)));
  const std::string metric = identifiability ? "identifiability" : "rank";
  print_header("Fig " + std::string(identifiability ? "9" : "8") + ": " +
                   metric + " loss vs candidate paths (" + topology +
                   ", MatRoMe vs SelectPath)",
               opts);

  std::vector<std::size_t> path_counts;
  if (opts.full) {
    path_counts = {400, 800, 1600, 2500};
  } else {
    path_counts = {200, 400, 800, 1600};
  }

  TablePrinter table({"candidate paths", "MatRoMe loss", "MatRoMe std",
                      "SelectPath loss", "SelectPath std"});
  for (std::size_t paths : path_counts) {
    RunningStats mat_stats;
    RunningStats sp_stats;
    for (std::size_t ms = 0; ms < monitor_sets; ++ms) {
      exp::WorkloadSpec spec;
      spec.topology = graph::parse_isp_topology(topology);
      spec.candidate_paths = paths;
      spec.seed = opts.seed + ms * 1000;
      spec.failure_intensity = 5.0;
      spec.unit_costs = true;  // Matroid setting.
      const exp::Workload w = exp::make_workload(spec);

      const auto mat_sel = core::matrome(*w.system, *w.failures);
      Rng sp_rng(w.seed * 77);
      const auto sp_sel = core::select_path_basis(*w.system, sp_rng);

      Rng rng = w.eval_rng();
      const auto mat_loss = exp::evaluate_loss(
          *w.system, mat_sel.paths, *w.failures, scenarios, identifiability,
          rng);
      const auto sp_loss = exp::evaluate_loss(
          *w.system, sp_sel.paths, *w.failures, scenarios, identifiability,
          rng);
      const RunningStats& m =
          identifiability ? mat_loss.identifiability_loss : mat_loss.rank_loss;
      const RunningStats& s =
          identifiability ? sp_loss.identifiability_loss : sp_loss.rank_loss;
      mat_stats.merge(m);
      sp_stats.merge(s);
    }
    table.add_row({std::to_string(paths), fmt(mat_stats.mean(), 2),
                   fmt(mat_stats.stddev(), 2), fmt(sp_stats.mean(), 2),
                   fmt(sp_stats.stddev(), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace rnt::bench
