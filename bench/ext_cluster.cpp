// Extension benchmark: the sharded cluster layer vs the single-node
// kernel engine, with a machine-readable BENCH_CLUSTER.json report.
//
// Spins W in-process loopback workers (real TcpServers, real sockets —
// the full wire path minus propagation delay) and measures cluster
// evaluate() and a RoMe gain sweep against the local KernelErEngine on
// the identical workload.  Every cluster result is asserted *bitwise*
// equal to the single-node answer first: a perf number for a wrong merge
// is worthless.
//
// The report intentionally carries NO gated ratios: loopback RPC scaling
// depends on core count and scheduler load, so tools/bench_compare runs
// it purely informationally (the committed baseline's "ratios" object is
// empty — keep it that way when re-baselining).  Scaling factors are
// printed for humans below the table.
#include <cstdint>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "cluster/coordinator.h"
#include "core/rome.h"
#include "service/server.h"
#include "service/workload_cache.h"
#include "util/table.h"

namespace rnt {
namespace {

/// In-process loopback worker fleet (mirrors tests/test_cluster.cpp).
class Fleet {
 public:
  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      auto worker = std::make_unique<Worker>();
      worker->server = std::make_unique<service::TcpServer>(
          service::ServerConfig{.port = 0,
                                .threads = 2,
                                .cache_capacity = 2,
                                .request_timeout_s = 120.0});
      worker->runner =
          std::thread([srv = worker->server.get()] { srv->run(); });
      workers_.push_back(std::move(worker));
    }
  }

  ~Fleet() {
    for (const auto& w : workers_) {
      w->server->stop();
      w->runner.join();
    }
  }

  std::vector<cluster::WorkerEndpoint> endpoints() const {
    std::vector<cluster::WorkerEndpoint> eps;
    for (const auto& w : workers_) {
      cluster::WorkerEndpoint ep;
      ep.port = w->server->port();
      eps.push_back(ep);
    }
    return eps;
  }

 private:
  struct Worker {
    std::unique_ptr<service::TcpServer> server;
    std::thread runner;
  };
  std::vector<std::unique_ptr<Worker>> workers_;
};

int run(Flags& flags) {
  const std::size_t paths =
      static_cast<std::size_t>(flags.get_int("paths", 60));
  const std::size_t runs = static_cast<std::size_t>(flags.get_int("runs", 40));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const double budget_frac = flags.get_double("budget-frac", 0.25);
  const double min_seconds = flags.get_double("min-seconds", 0.2);
  const std::string json_path = flags.get_string("json", "");
  const bool csv = flags.get_bool("csv", false);

  service::WorkloadKey key;
  key.nodes = 40;
  key.links = 80;
  key.candidate_paths = paths;
  key.seed = seed;
  key.intensity = 5.0;

  cluster::CoordinatorConfig config;
  config.runs = runs;
  config.rpc.reply_timeout_s = 120.0;

  // One fleet + coordinator per worker count, kept alive for the whole
  // run so measurements see warm connections and warm worker caches —
  // the steady state a resident coordinator actually operates in.
  const std::vector<std::size_t> worker_counts{1, 2, 4};
  std::vector<std::unique_ptr<Fleet>> fleets;
  std::vector<std::unique_ptr<cluster::Coordinator>> coords;
  for (const std::size_t w : worker_counts) {
    fleets.push_back(std::make_unique<Fleet>(w));
    coords.push_back(std::make_unique<cluster::Coordinator>(
        key, fleets.back()->endpoints(), config));
    coords.back()->hello();
  }

  const core::KernelErEngine& engine = coords.front()->engine();
  const exp::Workload& workload = coords.front()->workload().workload;
  std::vector<std::size_t> all(workload.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = budget_frac * workload.costs.subset_cost(
                                          *workload.system, all);

  // Correctness first: every fleet's merge must be bitwise single-node.
  const double local_er = engine.evaluate(all);
  const core::Selection local_sel =
      core::rome(*workload.system, workload.costs, budget, engine);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (coords[i]->evaluate(all) != local_er) {
      std::cerr << "FATAL: cluster evaluate (" << worker_counts[i]
                << " workers) differs from single-node\n";
      return 1;
    }
    const core::Selection sel = coords[i]->select(budget);
    if (sel.paths != local_sel.paths ||
        sel.objective != local_sel.objective) {
      std::cerr << "FATAL: cluster selection (" << worker_counts[i]
                << " workers) differs from single-node\n";
      return 1;
    }
  }

  bench::BenchReport report("ext_cluster");
  report.set_config("topology", "custom-40n-80l");
  report.set_config("paths", static_cast<double>(paths));
  report.set_config("scenarios", static_cast<double>(runs));
  report.set_config("seed", static_cast<double>(seed));
  report.set_config("budget_frac", budget_frac);
  report.set_config("transport", "loopback TCP, in-process workers");

  const bench::LatencySample local_eval = bench::measure(
      [&] { (void)engine.evaluate(all); }, /*min_iterations=*/20,
      min_seconds);
  const bench::LatencySample local_select = bench::measure(
      [&] {
        (void)core::rome(*workload.system, workload.costs, budget, engine);
      },
      /*min_iterations=*/5, min_seconds);
  report.add_metric("local_evaluate", local_eval);
  report.add_metric("local_select", local_select);

  TablePrinter table({"operation", "ops/sec", "p50 us", "p95 us"});
  table.add_row({"local_evaluate", fmt(local_eval.ops_per_sec, 1),
                 fmt(local_eval.p50_us, 2), fmt(local_eval.p95_us, 2)});
  table.add_row({"local_select", fmt(local_select.ops_per_sec, 1),
                 fmt(local_select.p50_us, 2), fmt(local_select.p95_us, 2)});

  std::vector<bench::LatencySample> cluster_evals;
  std::vector<bench::LatencySample> cluster_selects;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    cluster::Coordinator& coord = *coords[i];
    const std::string w = std::to_string(worker_counts[i]);
    const bench::LatencySample eval = bench::measure(
        [&] { (void)coord.evaluate(all); }, /*min_iterations=*/20,
        min_seconds);
    const bench::LatencySample select = bench::measure(
        [&] { (void)coord.select(budget); }, /*min_iterations=*/5,
        min_seconds);
    cluster_evals.push_back(eval);
    cluster_selects.push_back(select);
    report.add_metric("cluster_evaluate_w" + w, eval);
    report.add_metric("cluster_select_w" + w, select);
    table.add_row({"cluster_evaluate_w" + w, fmt(eval.ops_per_sec, 1),
                   fmt(eval.p50_us, 2), fmt(eval.p95_us, 2)});
    table.add_row({"cluster_select_w" + w, fmt(select.ops_per_sec, 1),
                   fmt(select.p50_us, 2), fmt(select.p95_us, 2)});
  }
  table.print(std::cout, csv);

  if (!csv) {
    std::cout << "\ncluster vs local (informational; loopback RPC "
                 "overhead dominates at this scale):\n";
    for (std::size_t i = 0; i < coords.size(); ++i) {
      std::cout << "  " << worker_counts[i] << " worker(s): evaluate "
                << fmt(cluster_evals[i].ops_per_sec / local_eval.ops_per_sec,
                       3)
                << "x local, select "
                << fmt(cluster_selects[i].ops_per_sec /
                           local_select.ops_per_sec,
                       3)
                << "x local\n";
    }
    std::cout << "merge check: ER and selection bitwise identical to "
                 "single-node at every worker count\n";
  }

  if (!json_path.empty()) {
    report.write(json_path);
    if (!csv) std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt

int main(int argc, char** argv) {
  return rnt::bench::run_driver(
      argc, argv, [](rnt::Flags& flags) { return rnt::run(flags); });
}
