// Extension — Theorem 10's regret bound vs measured regret.
//
// On an instance engineered to satisfy the theorem's conditions (disjoint
// single-link paths => every selection is linearly independent and the
// knapsack optimum is unique), the bound
//
//   R(n) <= Δ N [ (2L/δ)² (L+1) ln n + 1 + (π⁴/45) L ]
//
// is evaluated from the instance's true Δ, δ, N, L (checked via the
// Lemma 11 machinery) and printed against LSR's measured regret — showing
// both the log-shape agreement and the (expected, very large) constant gap
// between worst-case analysis and practice.
#include <cmath>
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/knapsack.h"
#include "learning/lsr.h"
#include "learning/simulator.h"
#include "tomo/path_system.h"

namespace rnt::bench {
namespace {

/// Disjoint single-link paths: the tractable gadget of the analysis.
tomo::PathSystem disjoint_paths(std::size_t n) {
  std::vector<tomo::ProbePath> paths(n);
  for (std::size_t i = 0; i < n; ++i) {
    paths[i].source = static_cast<graph::NodeId>(2 * i);
    paths[i].destination = static_cast<graph::NodeId>(2 * i + 1);
    paths[i].links = {static_cast<graph::EdgeId>(i)};
    paths[i].hops = 1;
  }
  return tomo::PathSystem(n, paths);
}

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const auto n_paths = static_cast<std::size_t>(flags.get_int("paths", 8));
  const auto budget = static_cast<std::size_t>(flags.get_int("budget", 3));
  const auto epochs = static_cast<std::size_t>(
      flags.get_int("epochs", opts.full ? 20000 : 4000));
  print_header("Extension: Theorem 10 bound vs measured LSR regret (" +
                   std::to_string(n_paths) + " disjoint paths, L = " +
                   std::to_string(budget) + ")",
               opts);

  // Distinct availabilities so the knapsack optimum is unique.
  tomo::PathSystem system = disjoint_paths(n_paths);
  std::vector<double> p(n_paths);
  for (std::size_t i = 0; i < n_paths; ++i) {
    p[i] = 0.1 + 0.8 * static_cast<double>(i) / static_cast<double>(n_paths);
  }
  failures::FailureModel model(p);
  tomo::CostModel costs = tomo::CostModel::unit();

  // Lemma 11 conditions must hold on this instance.
  const auto lemma = core::lemma11_condition(system, model, costs,
                                             static_cast<double>(budget));
  if (!lemma.holds()) {
    std::cout << "instance does not satisfy Lemma 11 — adjust parameters\n";
    return 1;
  }

  // Instance constants for the bound: availabilities theta_i = 1 - p_i.
  // EA of a set = sum of thetas; ER = EA (independent paths).
  std::vector<double> theta(n_paths);
  for (std::size_t i = 0; i < n_paths; ++i) theta[i] = 1.0 - p[i];
  std::vector<double> sorted = theta;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double best = 0.0, worst = 0.0, second = 0.0;
  for (std::size_t i = 0; i < budget; ++i) {
    best += sorted[i];
    worst += sorted[sorted.size() - 1 - i];
  }
  // Second-best set swaps the weakest chosen path for the strongest
  // unchosen one.
  second = best - sorted[budget - 1] + sorted[budget];
  const double delta_gap = best - worst;    // Δ: max ER gap.
  const double delta_min = best - second;   // δ: min EA gap (> 0 by Lemma).
  const double big_l = static_cast<double>(budget);
  const double big_n = static_cast<double>(n_paths);

  auto bound_at = [&](double n) {
    return delta_gap * big_n *
           (std::pow(2.0 * big_l / delta_min, 2.0) * (big_l + 1.0) *
                std::log(n) +
            1.0 + std::pow(std::acos(-1.0), 4.0) / 45.0 * big_l);
  };

  // Run LSR and measure regret against the exact clairvoyant reward.
  learning::Lsr learner(system, costs,
                        learning::LsrConfig{.budget = 0.0,
                                            .matroid_mode = true,
                                            .matroid_max_paths = budget});
  Rng rng(opts.seed * 7);
  const auto result =
      learning::run_learner(learner, system, model, epochs, rng);
  const auto regret = result.regret_curve(best);

  TablePrinter table({"epoch", "measured regret", "Theorem 10 bound",
                      "bound / measured"});
  for (std::size_t checkpoint = epochs / 8; checkpoint <= epochs;
       checkpoint += epochs / 8) {
    const double measured = std::max(regret[checkpoint - 1], 0.0);
    const double bound = bound_at(static_cast<double>(checkpoint));
    table.add_row({std::to_string(checkpoint), fmt(measured, 2),
                   fmt(bound, 0),
                   measured > 0 ? fmt(bound / measured, 0) : "-"});
  }
  table.print(std::cout, opts.csv);
  if (!opts.csv) {
    std::cout << "\ninstance: Delta=" << fmt(delta_gap, 3)
              << " delta=" << fmt(delta_min, 3) << " N=" << n_paths
              << " L=" << budget << " (Lemma 11 holds: knapsack optimum "
              << "unique and independent)\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
