// Quality/work frontier of the optimizer zoo (src/core/selectors) with a
// machine-readable BENCH_OPT.json report.
//
// Two random-topology families (connected Erdős–Rényi and
// Barabási–Albert) × three budget fractions, every selector in the
// registry on the shared ProbBound engine.  For each run the driver
// records the achieved objective and the work counters; a separate
// 12-path instance is solved exactly by branch-and-bound so greedy
// quality can be normalized against the true optimum.
//
// All gated ratios are built from deterministic quantities (objectives
// and gain-evaluation counters, identical on every machine); wall-clock
// latencies are reported as metrics only.  tools/bench_compare gates CI
// on the ratios against bench/baselines/BENCH_OPT.json plus hard
// --require floors: lazy greedy must select bitwise like eager RoMe at
// no more than half the gain evaluations, and local search must never
// polish a selection downhill.  The bitwise lazy==eager claim is also
// asserted directly here — a frontier measured on diverging selections
// fails loudly instead of reporting nonsense.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/expected_rank.h"
#include "core/selectors/selector.h"
#include "exp/workload.h"
#include "failures/failure_model.h"
#include "graph/generators.h"
#include "tomo/cost_model.h"
#include "tomo/monitors.h"
#include "util/table.h"

namespace rnt {
namespace {

/// One random-topology workload: paths, failure model and paper costs
/// over a generated graph.
struct OptWorkload {
  std::string name;
  std::unique_ptr<tomo::PathSystem> system;
  std::unique_ptr<failures::FailureModel> failures;
  tomo::CostModel costs = tomo::CostModel::unit();
};

OptWorkload make_opt_workload(const std::string& family, std::size_t nodes,
                              std::size_t edges, std::size_t paths,
                              std::uint64_t seed) {
  OptWorkload w;
  w.name = family;
  Rng rng(seed);
  graph::Graph g =
      family == "barabasi-albert"
          ? graph::barabasi_albert(nodes, /*attach=*/2, rng)
          : graph::connected_erdos_renyi(nodes, edges, rng);
  tomo::MonitorSet monitors;
  w.system = std::make_unique<tomo::PathSystem>(
      tomo::build_path_system(g, paths, rng, &monitors));
  w.failures = std::make_unique<failures::FailureModel>(
      failures::markopoulou_model(g.edge_count(), rng, /*intensity=*/5.0));
  w.costs = tomo::CostModel::paper_model(monitors, rng);
  return w;
}

double total_cost(const OptWorkload& w) {
  return w.costs.subset_cost(*w.system,
                             bench::all_paths_of(*w.system));
}

/// Per-(workload, budget, selector) outcome.
struct RunResult {
  core::Selection selection;
  core::SelectorStats stats;
};

RunResult run_selector(const std::string& name, const OptWorkload& w,
                       double budget, const core::ErEngine& engine,
                       const core::SelectorOptions& options) {
  RunResult r;
  r.selection = core::make_selector(name, options)
                    ->select(*w.system, w.costs, budget, engine, &r.stats);
  return r;
}

int run(Flags& flags) {
  const bench::CommonOptions opts = bench::parse_common(flags);
  const double min_seconds = flags.get_double("min-seconds", 0.1);
  const std::string json_path = flags.get_string("json", "");

  const std::size_t nodes = opts.full ? 60 : 40;
  const std::size_t edges = opts.full ? 140 : 80;
  const std::size_t paths = opts.full ? 96 : 48;
  const std::vector<double> budget_fracs = {0.1, 0.2, 0.3};
  const std::vector<std::string> zoo = {"eager", "rome", "lazy-greedy",
                                        "stochastic-greedy", "local-search"};

  bench::print_header("ext_optimizers — selector zoo frontier", opts);

  bench::BenchReport report("ext_optimizers");
  report.set_config("nodes", static_cast<double>(nodes));
  report.set_config("edges", static_cast<double>(edges));
  report.set_config("paths", static_cast<double>(paths));
  report.set_config("seed", static_cast<double>(opts.seed));
  report.set_config("engine", "probbound");
  report.set_config("budget_fracs", "0.1,0.2,0.3");

  std::vector<OptWorkload> workloads;
  workloads.push_back(make_opt_workload("erdos-renyi", nodes, edges, paths,
                                        opts.seed * 11 + 1));
  workloads.push_back(make_opt_workload("barabasi-albert", nodes, edges,
                                        paths, opts.seed * 11 + 2));

  TablePrinter table({"topology", "budget", "optimizer", "paths", "cost",
                      "objective", "gain evals", "evals"});

  // Deterministic totals feeding the gated ratios, accumulated across
  // every (topology, budget) cell.
  double eager_objective = 0.0, lazy_objective = 0.0;
  double stochastic_objective = 0.0, local_objective = 0.0;
  std::size_t eager_gain_evals = 0, lazy_gain_evals = 0;

  for (const OptWorkload& w : workloads) {
    const core::ProbBoundEr engine(*w.system, *w.failures);
    const double total = total_cost(w);
    for (const double frac : budget_fracs) {
      const double budget = frac * total;
      core::SelectorOptions options;
      options.seed = opts.seed;
      RunResult eager, lazy;
      for (const std::string& name : zoo) {
        const RunResult r = run_selector(name, w, budget, engine, options);
        table.add_row({w.name, fmt(frac, 1), name,
                       fmt(static_cast<double>(r.selection.size()), 0),
                       fmt(r.selection.cost, 0),
                       fmt(r.selection.objective, 4),
                       fmt(static_cast<double>(r.stats.gain_evaluations), 0),
                       fmt(static_cast<double>(r.stats.evaluate_calls), 0)});
        if (name == "eager") eager = r;
        if (name == "lazy-greedy") lazy = r;
        if (name == "stochastic-greedy") {
          stochastic_objective += r.selection.objective;
        }
        if (name == "local-search") local_objective += r.selection.objective;
      }
      // The frontier is only meaningful if CELF really reproduces the
      // eager selection — the repo's central bitwise claim.
      if (lazy.selection.paths != eager.selection.paths ||
          lazy.selection.objective != eager.selection.objective) {
        std::cerr << "FATAL: lazy greedy diverged from eager RoMe on "
                  << w.name << " at budget " << frac << " (lazy objective "
                  << fmt(lazy.selection.objective, 17) << " vs eager "
                  << fmt(eager.selection.objective, 17) << ")\n";
        return 1;
      }
      eager_objective += eager.selection.objective;
      lazy_objective += lazy.selection.objective;
      eager_gain_evals += eager.stats.gain_evaluations;
      lazy_gain_evals += lazy.stats.gain_evaluations;
    }
  }

  // Small-instance optimality: branch-and-bound is exact, so
  // lazy/optimal measures the true greedy gap (guarantee: >= 1-1/sqrt(e)
  // ~ 0.39; observed far closer to 1).
  const OptWorkload small =
      make_opt_workload("erdos-renyi-small", 14, 24, 12, opts.seed * 11 + 3);
  const core::ProbBoundEr small_engine(*small.system, *small.failures);
  const double small_budget = 0.4 * total_cost(small);
  core::SelectorOptions small_options;
  small_options.seed = opts.seed;
  const RunResult small_lazy = run_selector("lazy-greedy", small,
                                            small_budget, small_engine,
                                            small_options);
  const RunResult optimal = run_selector("branch-and-bound", small,
                                         small_budget, small_engine,
                                         small_options);
  table.add_row({small.name, "0.4", "lazy-greedy",
                 fmt(static_cast<double>(small_lazy.selection.size()), 0),
                 fmt(small_lazy.selection.cost, 0),
                 fmt(small_lazy.selection.objective, 4),
                 fmt(static_cast<double>(
                         small_lazy.stats.gain_evaluations), 0),
                 "0"});
  table.add_row({small.name, "0.4", "branch-and-bound",
                 fmt(static_cast<double>(optimal.selection.size()), 0),
                 fmt(optimal.selection.cost, 0),
                 fmt(optimal.selection.objective, 4),
                 fmt(static_cast<double>(optimal.stats.nodes_explored), 0),
                 fmt(static_cast<double>(optimal.stats.evaluate_calls), 0)});
  table.print(std::cout, opts.csv);

  // Wall-clock, metrics only (machine-dependent, never gated): one
  // selection per optimizer on the first workload's largest budget.
  const OptWorkload& timed = workloads.front();
  const core::ProbBoundEr timed_engine(*timed.system, *timed.failures);
  const double timed_budget = 0.3 * total_cost(timed);
  for (const std::string& name : zoo) {
    core::SelectorOptions options;
    options.seed = opts.seed;
    const auto selector = core::make_selector(name, options);
    report.add_metric(
        "select_" + name,
        bench::measure(
            [&] {
              (void)selector->select(*timed.system, timed.costs, timed_budget,
                                     timed_engine);
            },
            /*min_iterations=*/10, min_seconds));
  }

  const double eager_over_lazy_gain =
      static_cast<double>(eager_gain_evals) /
      static_cast<double>(lazy_gain_evals);
  report.add_ratio("eager_over_lazy_gain_evals", eager_over_lazy_gain);
  report.add_ratio("lazy_over_eager_quality",
                   lazy_objective / eager_objective);
  report.add_ratio("eager_over_lazy_quality",
                   eager_objective / lazy_objective);
  report.add_ratio("stochastic_over_eager_quality",
                   stochastic_objective / eager_objective);
  report.add_ratio("local_search_over_lazy_quality",
                   local_objective / lazy_objective);
  report.add_ratio("lazy_over_optimal_quality_small",
                   small_lazy.selection.objective /
                       optimal.selection.objective);

  if (!opts.csv) {
    std::cout << "\nlazy greedy: bitwise-identical selections to eager at "
              << fmt(eager_over_lazy_gain, 2)
              << "x fewer gain evaluations; lazy/optimal on the 12-path "
                 "instance "
              << fmt(small_lazy.selection.objective /
                         optimal.selection.objective, 4)
              << " (guarantee 0.3935)\n";
  }

  if (!json_path.empty()) {
    report.write(json_path);
    if (!opts.csv) std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt

int main(int argc, char** argv) {
  return rnt::bench::run_driver(
      argc, argv, [](rnt::Flags& flags) { return rnt::run(flags); });
}
