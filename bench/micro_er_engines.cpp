// Micro-benchmarks for the Expected Rank machinery: per-gain cost of the
// ProbBound vs. Monte Carlo accumulators (the paper's "ProbRoMe is ~5x
// faster than MonteRoMe" claim reduces to this gap), full RoMe runs with
// each engine, and the lazy vs. eager greedy.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/expected_rank.h"
#include "core/rome.h"
#include "exp/workload.h"

namespace rnt {
namespace {

struct Fixture {
  exp::Workload w;
  explicit Fixture(std::size_t paths)
      : w(exp::make_custom_workload(87, 161, paths, /*seed=*/5,
                                    /*failure_intensity=*/5.0)) {}
};

void BM_GainProbBound(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  core::ProbBoundEr engine(*f.w.system, *f.w.failures);
  auto acc = engine.make_accumulator();
  // Fill half the selection so gains run against a realistic basis.
  for (std::size_t q = 0; q < f.w.system->path_count() / 2; ++q) acc->add(q);
  std::size_t probe = f.w.system->path_count() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc->gain(probe));
  }
}
BENCHMARK(BM_GainProbBound)->Arg(100)->Arg(200);

void BM_GainMonteCarlo(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  Rng rng = f.w.eval_rng();
  core::MonteCarloEr engine(*f.w.system, *f.w.failures, 50, rng);
  auto acc = engine.make_accumulator();
  for (std::size_t q = 0; q < f.w.system->path_count() / 2; ++q) acc->add(q);
  std::size_t probe = f.w.system->path_count() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc->gain(probe));
  }
}
BENCHMARK(BM_GainMonteCarlo)->Arg(100)->Arg(200);

void BM_RomeProbBound(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  core::ProbBoundEr engine(*f.w.system, *f.w.failures);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::rome(*f.w.system, f.w.costs, 5000.0, engine));
  }
}
BENCHMARK(BM_RomeProbBound)->Arg(100)->Arg(200);

void BM_RomeMonteCarlo(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  Rng rng = f.w.eval_rng();
  core::MonteCarloEr engine(*f.w.system, *f.w.failures, 50, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::rome(*f.w.system, f.w.costs, 5000.0, engine));
  }
}
BENCHMARK(BM_RomeMonteCarlo)->Arg(100);

void BM_RomeLazy(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  core::ProbBoundEr engine(*f.w.system, *f.w.failures);
  std::size_t evals = 0;
  for (auto _ : state) {
    core::RomeStats stats;
    benchmark::DoNotOptimize(
        core::rome(*f.w.system, f.w.costs, 1e9, engine, &stats));
    evals = stats.gain_evaluations;
  }
  state.counters["gain_evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_RomeLazy)->Arg(100)->Arg(200);

void BM_RomeEager(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  core::ProbBoundEr engine(*f.w.system, *f.w.failures);
  std::size_t evals = 0;
  for (auto _ : state) {
    core::RomeStats stats;
    benchmark::DoNotOptimize(
        core::rome_eager(*f.w.system, f.w.costs, 1e9, engine, &stats));
    evals = stats.gain_evaluations;
  }
  state.counters["gain_evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_RomeEager)->Arg(100);

void BM_ProbBoundEvaluate(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  core::ProbBoundEr engine(*f.w.system, *f.w.failures);
  std::vector<std::size_t> all(f.w.system->path_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(all));
  }
}
BENCHMARK(BM_ProbBoundEvaluate)->Arg(100)->Arg(200);

}  // namespace
}  // namespace rnt
