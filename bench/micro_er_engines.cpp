// Micro-benchmarks for the Expected Rank engines — the repo's hottest
// path — with a machine-readable BENCH_ER.json report.
//
// Measures the scenario (floating-point elimination), kernel (bit-packed
// exact integer rank) and ProbBound engines on the same workload:
// per-call evaluate() latency, a greedy gain sweep (fresh accumulator,
// half the candidates committed, gains over the rest — the memo makes a
// bare repeated gain() a cache hit, so the sweep is the honest unit), and
// a full RoMe selection.  Cross-engine ratios are recorded alongside the
// absolute numbers; tools/bench_compare gates CI on the ratios against
// bench/baselines/BENCH_ER.json (see docs/BENCHMARKS.md).
//
// The kernel/scenario evaluate results are also asserted bitwise equal
// here, so a perf run that silently diverges fails loudly.
#include <cstdint>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/expected_rank.h"
#include "core/kernel_er.h"
#include "core/rome.h"
#include "exp/workload.h"
#include "util/table.h"

namespace rnt {
namespace {

int run(Flags& flags) {
  const std::size_t paths =
      static_cast<std::size_t>(flags.get_int("paths", 64));
  const std::size_t runs = static_cast<std::size_t>(flags.get_int("runs", 50));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 4));
  const double min_seconds = flags.get_double("min-seconds", 0.2);
  const std::string json_path = flags.get_string("json", "");
  const bool csv = flags.get_bool("csv", false);

  const std::size_t wide_runs =
      static_cast<std::size_t>(flags.get_int("wide-runs", 256));

  const exp::Workload w =
      exp::make_custom_workload(87, 161, paths, seed, /*intensity=*/5.0);
  Rng rng = w.eval_rng();
  const core::MonteCarloEr scenario(*w.system, *w.failures, runs, rng);
  const core::KernelErEngine kernel(*w.system, scenario.scenarios(),
                                    scenario.weights(), scenario.name());
  const core::ProbBoundEr probbound(*w.system, *w.failures);

  // Forced sliced-vs-scalar pair over one shared mixture, sampled at a
  // scenario count that fills the 64 instance lanes — the head-to-head
  // that isolates the rank kernel itself from the engine plumbing.
  // (The `kernel` engine above keeps the shipped auto default, which
  // resolves to sliced on this mixture.)
  const core::MonteCarloEr wide(*w.system, *w.failures, wide_runs, rng);
  core::KernelErEngine sliced_engine(*w.system, wide.scenarios(),
                                     wide.weights(), wide.name());
  sliced_engine.set_kernel_mode(core::KernelMode::kSliced);
  core::KernelErEngine scalar_engine(*w.system, wide.scenarios(),
                                     wide.weights(), wide.name());
  scalar_engine.set_kernel_mode(core::KernelMode::kScalar);

  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});

  // The perf claim is only meaningful if both engines agree.
  const double scenario_er = scenario.evaluate(all);
  const double kernel_er = kernel.evaluate(all);
  if (scenario_er != kernel_er) {
    std::cerr << "FATAL: kernel evaluate " << kernel_er
              << " differs from scenario evaluate " << scenario_er << "\n";
    return 1;
  }
  if (sliced_engine.evaluate(all) != scalar_engine.evaluate(all)) {
    std::cerr << "FATAL: sliced and scalar kernels disagree on evaluate\n";
    return 1;
  }

  bench::BenchReport report("micro_er_engines");
  report.set_config("topology", "custom-87n-161l");
  report.set_config("paths", static_cast<double>(paths));
  report.set_config("scenarios", static_cast<double>(runs));
  report.set_config("seed", static_cast<double>(seed));
  report.set_config("threads", static_cast<double>(threads));
  report.set_config("gain_sweep",
                    "fresh accumulator + paths/2 adds + paths/2 gains");
  report.set_config("wide_scenarios", static_cast<double>(wide_runs));

  auto time_evaluate = [&](const core::ErEngine& engine) {
    return bench::measure([&] { (void)engine.evaluate(all); },
                          /*min_iterations=*/20, min_seconds);
  };
  // One sweep = the greedy inner loop at half selection: build, commit the
  // first half, then one fresh gain per remaining candidate.
  auto time_gain_sweep = [&](const core::ErEngine& engine) {
    return bench::measure(
        [&] {
          auto acc = engine.make_accumulator();
          const std::size_t half = all.size() / 2;
          for (std::size_t q = 0; q < half; ++q) acc->add(q);
          double sink = 0.0;
          for (std::size_t q = half; q < all.size(); ++q) sink += acc->gain(q);
          if (sink < 0.0) std::cerr << "";  // Defeat dead-code elimination.
        },
        /*min_iterations=*/20, min_seconds);
  };
  auto time_rome = [&](const core::ErEngine& engine) {
    return bench::measure(
        [&] { (void)core::rome(*w.system, w.costs, 5000.0, engine); },
        /*min_iterations=*/10, min_seconds);
  };

  const bench::LatencySample scenario_eval = time_evaluate(scenario);
  const bench::LatencySample kernel_eval = time_evaluate(kernel);
  // Fresh engine per call: no warm rank memo, so this times packing +
  // dedup + elimination — the service's first-touch cost for a workload.
  const bench::LatencySample kernel_eval_cold = bench::measure(
      [&] {
        const core::KernelErEngine cold(*w.system, scenario.scenarios(),
                                        scenario.weights(), scenario.name());
        (void)cold.evaluate(all);
      },
      /*min_iterations=*/20, min_seconds);
  const bench::LatencySample kernel_eval_mt = bench::measure(
      [&] { (void)kernel.evaluate_parallel(all, threads); },
      /*min_iterations=*/20, min_seconds);
  const bench::LatencySample probbound_eval = time_evaluate(probbound);
  const bench::LatencySample scenario_gain = time_gain_sweep(scenario);
  const bench::LatencySample kernel_gain = time_gain_sweep(kernel);
  const bench::LatencySample probbound_gain = time_gain_sweep(probbound);
  const bench::LatencySample scenario_rome = time_rome(scenario);
  const bench::LatencySample kernel_rome = time_rome(kernel);
  const bench::LatencySample sliced_gain = time_gain_sweep(sliced_engine);
  const bench::LatencySample scalar_gain = time_gain_sweep(scalar_engine);
  const bench::LatencySample sliced_rome = time_rome(sliced_engine);
  const bench::LatencySample scalar_rome = time_rome(scalar_engine);

  report.add_metric("scenario_evaluate", scenario_eval);
  report.add_metric("kernel_evaluate", kernel_eval);
  report.add_metric("kernel_evaluate_cold", kernel_eval_cold);
  report.add_metric("kernel_evaluate_mt", kernel_eval_mt);
  report.add_metric("probbound_evaluate", probbound_eval);
  report.add_metric("scenario_gain_sweep", scenario_gain);
  report.add_metric("kernel_gain_sweep", kernel_gain);
  report.add_metric("probbound_gain_sweep", probbound_gain);
  report.add_metric("scenario_rome", scenario_rome);
  report.add_metric("kernel_rome", kernel_rome);
  report.add_metric("kernel_gain_sweep_sliced", sliced_gain);
  report.add_metric("kernel_gain_sweep_scalar", scalar_gain);
  report.add_metric("kernel_rome_sliced", sliced_rome);
  report.add_metric("kernel_rome_scalar", scalar_rome);

  report.add_ratio("sliced_vs_scalar_gain",
                   sliced_gain.ops_per_sec / scalar_gain.ops_per_sec);
  report.add_ratio("sliced_vs_scalar_rome",
                   sliced_rome.ops_per_sec / scalar_rome.ops_per_sec);
  report.add_ratio("kernel_vs_scenario_evaluate",
                   kernel_eval.ops_per_sec / scenario_eval.ops_per_sec);
  report.add_ratio("kernel_vs_scenario_gain",
                   kernel_gain.ops_per_sec / scenario_gain.ops_per_sec);
  report.add_ratio("kernel_vs_scenario_rome",
                   kernel_rome.ops_per_sec / scenario_rome.ops_per_sec);
  report.add_ratio("kernel_mt_vs_scenario_evaluate",
                   kernel_eval_mt.ops_per_sec / scenario_eval.ops_per_sec);
  report.add_ratio("kernel_cold_vs_scenario_evaluate",
                   kernel_eval_cold.ops_per_sec / scenario_eval.ops_per_sec);

  TablePrinter table({"metric", "ops/sec", "p50 us", "p95 us"});
  const std::vector<std::pair<std::string, bench::LatencySample>> rows = {
      {"scenario_evaluate", scenario_eval},
      {"kernel_evaluate", kernel_eval},
      {"kernel_evaluate_cold", kernel_eval_cold},
      {"kernel_evaluate_mt", kernel_eval_mt},
      {"probbound_evaluate", probbound_eval},
      {"scenario_gain_sweep", scenario_gain},
      {"kernel_gain_sweep", kernel_gain},
      {"probbound_gain_sweep", probbound_gain},
      {"scenario_rome", scenario_rome},
      {"kernel_rome", kernel_rome},
      {"kernel_gain_sweep_sliced", sliced_gain},
      {"kernel_gain_sweep_scalar", scalar_gain},
      {"kernel_rome_sliced", sliced_rome},
      {"kernel_rome_scalar", scalar_rome},
  };
  for (const auto& [name, sample] : rows) {
    table.add_row({name, fmt(sample.ops_per_sec, 1), fmt(sample.p50_us, 2),
                   fmt(sample.p95_us, 2)});
  }
  table.print(std::cout, csv);
  if (!csv) {
    std::cout << "\nkernel vs scenario: evaluate "
              << fmt(kernel_eval.ops_per_sec / scenario_eval.ops_per_sec, 2)
              << "x, gain sweep "
              << fmt(kernel_gain.ops_per_sec / scenario_gain.ops_per_sec, 2)
              << "x, rome "
              << fmt(kernel_rome.ops_per_sec / scenario_rome.ops_per_sec, 2)
              << "x (ER = " << fmt(kernel_er, 6) << ", bitwise equal)\n";
    std::cout << "sliced vs scalar kernel (MC-" << wide_runs
              << "): gain sweep "
              << fmt(sliced_gain.ops_per_sec / scalar_gain.ops_per_sec, 2)
              << "x, rome "
              << fmt(sliced_rome.ops_per_sec / scalar_rome.ops_per_sec, 2)
              << "x\n";
  }

  if (!json_path.empty()) {
    report.write(json_path);
    if (!csv) std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv,
                                [](rnt::Flags& flags) { return rnt::run(flags); });
}
