// Extension — multi-failure Boolean localization under node and cascade
// failure families, with a machine-readable BENCH_LOCAL.json report.
//
// The paper selects probes for rank robustness; this driver measures what
// that buys for *Boolean localization* (src/boolnt): a ProbRoMe selection
// fed each family's marginal link probabilities is compared against a
// size-matched uniform random selection on the fraction of injected
// failures it localizes exactly (unique minimal hitting set == the visible
// truth) and on Ma–He maximal identifiability of the probed subset.
//
//   * node family    — NodeFailureModel over the workload graph: node
//     failures knock out every incident link; hypotheses are nodes.
//   * cascade family — CascadeModel: background seeds spread to
//     link-graph neighbors with geometric decay; hypotheses are links.
//
// Every gated ratio is built from deterministic counts (seeded truth
// injection, exhaustive hitting-set enumeration, exact identifiability),
// so runs reproduce bitwise on any machine; wall-clock latencies are
// reported as metrics only.  tools/bench_compare gates CI on the ratios
// against bench/baselines/BENCH_LOCAL.json.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "boolnt/hypothesis.h"
#include "boolnt/identifiability.h"
#include "boolnt/localize.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "failures/cascade.h"
#include "failures/node_failure.h"

namespace rnt::bench {
namespace {

/// Outcome of scoring one (selection, family) cell.
struct Cell {
  boolnt::MultiLocalizationScore score;
  std::size_t max_identifiable = 0;
};

Cell run_cell(const tomo::PathSystem& system,
              const std::vector<std::size_t>& subset,
              const boolnt::HypothesisSpace& space, std::size_t k,
              std::size_t trials, std::uint64_t truth_seed,
              std::size_t ident_cap) {
  Cell cell;
  Rng rng(truth_seed);
  cell.score =
      boolnt::score_multi_localization(system, subset, space, k, trials, rng);
  cell.max_identifiable =
      boolnt::identifiability_report(system, subset, space, ident_cap)
          .max_identifiable;
  return cell;
}

/// Laplace-smoothed count ratio: both counts are deterministic, the +0.5
/// only keeps the ratio finite when the random baseline scores zero.
double smoothed(std::size_t a, std::size_t b) {
  return (static_cast<double>(a) + 0.5) / (static_cast<double>(b) + 0.5);
}

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const auto nodes =
      static_cast<std::size_t>(flags.get_int("nodes", opts.full ? 40 : 26));
  const auto links =
      static_cast<std::size_t>(flags.get_int("links", opts.full ? 80 : 44));
  const auto paths =
      static_cast<std::size_t>(flags.get_int("paths", opts.full ? 120 : 70));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 2));
  const auto trials = static_cast<std::size_t>(
      flags.get_int("trials", opts.full ? 400 : 200));
  const auto ident_cap =
      static_cast<std::size_t>(flags.get_int("ident-cap", 2));
  const double budget_frac = flags.get_double("budget-frac", 0.3);
  const double min_seconds = flags.get_double("min-seconds", 0.1);
  const std::string json_path = flags.get_string("json", "");
  print_header("Extension: multi-failure localization (node/cascade)", opts);

  const exp::Workload w =
      exp::make_custom_workload(nodes, links, paths, opts.seed, 5.0);
  const std::vector<std::size_t> all = all_paths_of(*w.system);
  const double budget = budget_frac * total_probing_cost(w);

  // The two families over the same workload graph and background model.
  const auto node_family = failures::NodeFailureModel::from_graph(
      w.graph, *w.failures,
      std::vector<double>(w.graph.node_count(), 0.08));
  const auto cascade_family = failures::CascadeModel::from_graph(
      w.graph, *w.failures, /*spread=*/0.35, /*decay=*/0.5);
  Rng marginal_rng(opts.seed * 23 + 5);
  const failures::FailureModel node_marginal = node_family.marginal_model();
  const failures::FailureModel cascade_marginal =
      cascade_family.approx_marginal_model(4000, marginal_rng);

  const auto node_space = boolnt::HypothesisSpace::nodes_of(w.graph);
  const auto link_space =
      boolnt::HypothesisSpace::links_of(w.system->link_count());

  BenchReport report("ext_node_localization");
  report.set_config("nodes", static_cast<double>(nodes));
  report.set_config("links", static_cast<double>(links));
  report.set_config("paths", static_cast<double>(paths));
  report.set_config("seed", static_cast<double>(opts.seed));
  report.set_config("k", static_cast<double>(k));
  report.set_config("trials", static_cast<double>(trials));
  report.set_config("budget_frac", budget_frac);

  TablePrinter table({"family", "selection", "paths", "exact", "ambiguous",
                      "misled", "invisible", "exact frac", "hit frac",
                      "max ident"});

  struct FamilyCase {
    std::string name;
    const failures::FailureModel* marginal;
    const boolnt::HypothesisSpace* space;
  };
  const std::vector<FamilyCase> cases = {
      {"node", &node_marginal, &node_space},
      {"cascade", &cascade_marginal, &link_space},
  };

  std::vector<Cell> rome_cells, random_cells;
  for (std::size_t f = 0; f < cases.size(); ++f) {
    const FamilyCase& fc = cases[f];
    // ProbRoMe fed the family marginal vs a size-matched random subset.
    core::ProbBoundEr engine(*w.system, *fc.marginal);
    const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
    Rng random_rng(opts.seed * 29 + f);
    const auto random_sel =
        random_k_paths(random_rng, w.system->path_count(), rome_sel.paths.size());

    // Identical truth seed per family: both selections face the same
    // injected failure sequence.
    const std::uint64_t truth_seed = opts.seed * 31 + f;
    const Cell rome_cell = run_cell(*w.system, rome_sel.paths, *fc.space, k,
                                    trials, truth_seed, ident_cap);
    const Cell random_cell = run_cell(*w.system, random_sel, *fc.space, k,
                                      trials, truth_seed, ident_cap);
    rome_cells.push_back(rome_cell);
    random_cells.push_back(random_cell);

    for (const auto& [label, sel, cell] :
         {std::tuple{"ProbRoMe", &rome_sel.paths, &rome_cell},
          std::tuple{"random", &random_sel, &random_cell}}) {
      table.add_row({fc.name, label,
                     fmt(static_cast<double>(sel->size()), 0),
                     fmt(static_cast<double>(cell->score.exact), 0),
                     fmt(static_cast<double>(cell->score.ambiguous), 0),
                     fmt(static_cast<double>(cell->score.misled), 0),
                     fmt(static_cast<double>(cell->score.invisible), 0),
                     fmt(cell->score.exact_fraction(), 3),
                     fmt(cell->score.hit_fraction(), 3),
                     fmt(static_cast<double>(cell->max_identifiable), 0)});
    }

    report.add_ratio(fc.name + "_exact_rome_over_random",
                     smoothed(rome_cell.score.exact, random_cell.score.exact));
    report.add_ratio(fc.name + "_hit_rome_over_random",
                     smoothed(rome_cell.score.exact + rome_cell.score.ambiguous,
                              random_cell.score.exact +
                                  random_cell.score.ambiguous));
    report.add_ratio(fc.name + "_rome_exact_fraction",
                     rome_cell.score.exact_fraction());
    report.add_ratio(fc.name + "_ident_rome_over_random",
                     smoothed(rome_cell.max_identifiable,
                              random_cell.max_identifiable));
  }
  table.print(std::cout, opts.csv);

  // Wall-clock, metrics only (never gated): one localization call and one
  // identifiability report on the node-family ProbRoMe selection.
  {
    core::ProbBoundEr engine(*w.system, node_marginal);
    const auto sel = core::rome(*w.system, w.costs, budget, engine);
    Rng sample_rng(opts.seed * 37);
    const auto truth = node_family.sample(sample_rng);
    report.add_metric("localize_node_call",
                      measure(
                          [&] {
                            (void)boolnt::localize_multi_failure(
                                *w.system, sel.paths, truth, node_space, k);
                          },
                          /*min_iterations=*/20, min_seconds));
    report.add_metric("identifiability_report",
                      measure(
                          [&] {
                            (void)boolnt::identifiability_report(
                                *w.system, sel.paths, node_space, ident_cap);
                          },
                          /*min_iterations=*/5, min_seconds));
  }

  if (!opts.csv) {
    std::cout << "\nexact-localization lift (ProbRoMe over random, "
                 "smoothed): node "
              << fmt(smoothed(rome_cells[0].score.exact,
                              random_cells[0].score.exact), 2)
              << "x, cascade "
              << fmt(smoothed(rome_cells[1].score.exact,
                              random_cells[1].score.exact), 2)
              << "x\n";
  }
  if (!json_path.empty()) {
    report.write(json_path);
    if (!opts.csv) std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
