// Extension — regret trajectories of the online learners.
//
// Theorem 10 bounds LSR's regret by O(log n) under its conditions; this
// experiment plots the measured cumulative regret (vs the clairvoyant
// expected per-epoch reward) at checkpoints for LSR, epsilon-greedy and
// Thompson sampling, plus LSR under *bursty* (Gilbert-Elliott) failures
// where the i.i.d. assumption behind the analysis is violated.
//
// Expected shape: LSR and Thompson flatten (sublinear); epsilon-greedy
// keeps a linear component (epsilon never decays); the bursty column shows
// learning still works when failures are correlated in time, with slower
// convergence.
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "failures/gilbert_elliott.h"
#include "learning/baselines.h"
#include "learning/lsr.h"
#include "learning/simulator.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 200 : 60));
  const auto epochs = static_cast<std::size_t>(
      flags.get_int("epochs", opts.full ? 2000 : 600));
  const double budget_frac = flags.get_double("budget-frac", 0.12);
  const double burst = flags.get_double("burst", 5.0);
  print_header("Extension: cumulative regret over " + std::to_string(epochs) +
                   " epochs (" + topology + ")",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;
  const exp::Workload w = exp::make_workload(spec);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = budget_frac * w.costs.subset_cost(*w.system, all);

  // Clairvoyant per-epoch reference reward.
  core::ProbBoundEr engine(*w.system, *w.failures);
  const auto star = core::rome(*w.system, w.costs, budget, engine);
  Rng ref_rng = w.eval_rng();
  const double reference = learning::estimate_expected_reward(
      *w.system, star.paths, *w.failures, 3000, ref_rng);

  // Learners under i.i.d. failures.
  learning::Lsr lsr(*w.system, w.costs, learning::LsrConfig{.budget = budget});
  learning::EpsilonGreedy eg(*w.system, w.costs, budget, 0.1,
                             Rng(opts.seed * 3));
  learning::ThompsonSampling ts(*w.system, w.costs, budget,
                                Rng(opts.seed * 5));
  Rng rng1(opts.seed * 11), rng2(opts.seed * 11), rng3(opts.seed * 11);
  const auto r_lsr =
      learning::run_learner(lsr, *w.system, *w.failures, epochs, rng1);
  const auto r_eg =
      learning::run_learner(eg, *w.system, *w.failures, epochs, rng2);
  const auto r_ts =
      learning::run_learner(ts, *w.system, *w.failures, epochs, rng3);

  // LSR under bursty failures with the same stationary marginals.
  learning::Lsr lsr_burst(*w.system, w.costs,
                          learning::LsrConfig{.budget = budget});
  failures::GilbertElliottModel ge(w.failures->probabilities(), burst,
                                   Rng(opts.seed * 13));
  learning::SimulationResult r_burst;
  for (std::size_t n = 0; n < epochs; ++n) {
    const auto action = lsr_burst.select_action();
    const auto v = ge.step();
    std::vector<bool> avail(action.size());
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < action.size(); ++i) {
      avail[i] = w.system->path_survives(action[i], v);
      if (avail[i]) survivors.push_back(action[i]);
    }
    lsr_burst.observe(action, avail);
    learning::EpochRecord rec;
    rec.epoch = n + 1;
    rec.action_size = action.size();
    rec.reward = static_cast<double>(w.system->rank_of(survivors));
    r_burst.cumulative_reward += rec.reward;
    r_burst.records.push_back(rec);
  }

  const auto c_lsr = r_lsr.regret_curve(reference);
  const auto c_eg = r_eg.regret_curve(reference);
  const auto c_ts = r_ts.regret_curve(reference);
  const auto c_burst = r_burst.regret_curve(reference);

  TablePrinter table({"epoch", "LSR", "eps-greedy 0.1", "Thompson",
                      "LSR (bursty)"});
  for (std::size_t checkpoint = epochs / 6; checkpoint <= epochs;
       checkpoint += epochs / 6) {
    const std::size_t i = checkpoint - 1;
    table.add_row({std::to_string(checkpoint), fmt(c_lsr[i], 1),
                   fmt(c_eg[i], 1), fmt(c_ts[i], 1), fmt(c_burst[i], 1)});
  }
  table.print(std::cout, opts.csv);
  if (!opts.csv) {
    std::cout << "\nclairvoyant per-epoch reward: " << fmt(reference, 2)
              << "; bursty model mean burst length " << burst << " epochs\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
