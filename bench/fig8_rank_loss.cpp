// Figure 8 — rank loss under failures vs. number of candidate paths,
// MatRoMe vs. SelectPath (see fig89_common.h for the experiment design).
#include "fig89_common.h"

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, [](rnt::Flags& flags) {
    return rnt::bench::run_loss_sweep(flags, /*identifiability=*/false);
  });
}
