// Extension — e2e measurement completion coverage under failures.
//
// The scalable-monitoring application (Chen et al.): probe a subset, and
// reconstruct the measurements of every other candidate path from it.
// Under failures, completion coverage (how many of the |R_M| candidate
// paths' measurements are still obtainable) degrades; this experiment
// sweeps the budget and compares RoMe's selection against SelectPath on
// that application-level metric.
//
// Expected shape: same ordering as Fig 5 but amplified — each unit of
// surviving rank typically unlocks several reconstructible paths.
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "tomo/completion.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS3257" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 1600 : 800));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 300 : 80));
  print_header("Extension: measurement-completion coverage vs budget (" +
                   topology + ", " + std::to_string(paths) + " paths)",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;
  const exp::Workload w = exp::make_workload(spec);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double total = w.costs.subset_cost(*w.system, all);
  core::ProbBoundEr engine(*w.system, *w.failures);

  TablePrinter table({"budget-frac", "RoMe coverage", "SP coverage",
                      "candidates"});
  for (double frac : {0.03, 0.06, 0.1, 0.18, 0.3}) {
    const double budget = frac * total;
    const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
    Rng sp_rng(opts.seed * 7 + static_cast<std::uint64_t>(frac * 100));
    const auto sp_sel =
        core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);
    RunningStats rome_cov, sp_cov;
    Rng rng(opts.seed * 19 + static_cast<std::uint64_t>(frac * 100));
    for (std::size_t s = 0; s < scenarios; ++s) {
      const auto v = w.failures->sample(rng);
      rome_cov.add(static_cast<double>(
          tomo::completion_coverage_under(*w.system, rome_sel.paths, v)));
      sp_cov.add(static_cast<double>(
          tomo::completion_coverage_under(*w.system, sp_sel.paths, v)));
    }
    table.add_row({fmt(frac, 2), fmt(rome_cov.mean(), 1),
                   fmt(sp_cov.mean(), 1),
                   std::to_string(w.system->path_count())});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
