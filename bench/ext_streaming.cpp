// Extension — streaming path selection vs offline greedy.
//
// Candidate paths arrive online (monitor pairs come up over time); the
// sieve-streaming selector must commit with bounded memory while the
// offline greedy (RoMe, unit costs) sees everything.  Reported: the ER
// objective both achieve at equal cardinality budgets, the streaming
// fraction of the offline value, and the number of sieves (memory).
//
// Expected shape: streaming retains a large constant fraction (well above
// its 1/2 - eps guarantee) of the offline greedy's value at every k.
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/streaming.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 400 : 200));
  const double epsilon = flags.get_double("epsilon", 0.1);
  // This driver's historical default is the ProbBound surrogate, so it
  // re-reads --engine with default "prob" (parse_common defaults to "mc"
  // for the figure drivers); "mc" / "kernel" stream over a sampled
  // scenario mixture instead.
  const std::string engine_name = flags.get_string("engine", "prob");
  const auto mc_runs = static_cast<std::size_t>(flags.get_int("mc-runs", 50));
  print_header("Extension: sieve-streaming vs offline greedy (" + topology +
                   ")",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;
  const exp::Workload w = exp::make_workload(spec);
  core::ProbBoundEr prob(*w.system, *w.failures);
  std::unique_ptr<core::ScenarioErEngine> sampled;
  if (engine_name != "prob") {
    Rng mc_rng = w.eval_rng();
    sampled = make_scenario_engine(engine_name, *w.system, *w.failures,
                                   mc_runs, mc_rng);
  }
  const core::ErEngine& engine =
      sampled ? static_cast<const core::ErEngine&>(*sampled) : prob;

  // Random arrival order (adversarial for streaming).
  Rng order_rng(opts.seed * 3);
  std::vector<std::size_t> order(w.system->path_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  order_rng.shuffle(order);

  TablePrinter table({"k", "offline greedy ER", "streaming ER", "fraction",
                      "sieves"});
  for (std::size_t k : {5u, 10u, 20u, 40u, 80u}) {
    const auto offline = core::rome(*w.system, tomo::CostModel::unit(),
                                    static_cast<double>(k), engine);
    core::StreamingSelector selector(engine,
                                     {.max_paths = k, .epsilon = epsilon});
    for (std::size_t q : order) selector.offer(q);
    const auto streamed = selector.selection();
    const double off_value = engine.evaluate(offline.paths);
    const double str_value = engine.evaluate(streamed.paths);
    table.add_row({std::to_string(k), fmt(off_value, 2), fmt(str_value, 2),
                   fmt(off_value > 0 ? str_value / off_value : 1.0, 3),
                   std::to_string(selector.sieve_count())});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
