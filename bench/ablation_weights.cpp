// Ablation — RoMe's cost-benefit greedy weight (marginal ER / cost, as in
// Algorithm 1) vs. an unnormalized variant that greedily maximizes the raw
// marginal ER.  Under the paper's heterogeneous probing costs the
// cost-benefit rule should reach a higher surviving rank per unit budget;
// under unit costs both coincide.
#include <numeric>
#include <queue>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"

namespace rnt::bench {
namespace {

/// RoMe with the unnormalized weight w_q = marginal ER (no cost division),
/// same lazy-greedy skeleton as core::rome.
core::Selection rome_unnormalized(const tomo::PathSystem& system,
                                  const tomo::CostModel& costs, double budget,
                                  const core::ErEngine& engine) {
  const std::vector<double> cost = costs.path_costs(system);
  auto acc = engine.make_accumulator();
  core::Selection out;
  struct Entry {
    double weight;
    std::size_t path;
    bool operator<(const Entry& o) const { return weight < o.weight; }
  };
  std::priority_queue<Entry> heap;
  for (std::size_t q = 0; q < system.path_count(); ++q) {
    heap.push({acc->gain(q), q});
  }
  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    const double g = acc->gain(top.path);
    if (!heap.empty() && g + 1e-12 < heap.top().weight) {
      heap.push({g, top.path});
      continue;
    }
    if (out.cost + cost[top.path] <= budget) {
      acc->add(top.path);
      out.paths.push_back(top.path);
      out.cost += cost[top.path];
    }
  }
  out.objective = acc->value();
  return out;
}

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 400 : 200));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 300 : 100));
  const auto monitor_sets = static_cast<std::size_t>(
      flags.get_int("monitor-sets", 2));
  print_header(
      "Ablation: RoMe weight = gain/cost vs unnormalized gain (" + topology +
          ")",
      opts);

  TablePrinter table({"budget-frac", "gain/cost rank", "unnormalized rank"});
  const std::vector<double> fractions = {0.03, 0.06, 0.1, 0.18};
  std::vector<RunningStats> ratio_stats(fractions.size());
  std::vector<RunningStats> raw_stats(fractions.size());
  for (std::size_t ms = 0; ms < monitor_sets; ++ms) {
    exp::WorkloadSpec spec;
    spec.topology = graph::parse_isp_topology(topology);
    spec.candidate_paths = paths;
    spec.seed = opts.seed + ms * 1000;
    spec.failure_intensity = 5.0;
    const exp::Workload w = exp::make_workload(spec);
    std::vector<std::size_t> all(w.system->path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const double total = w.costs.subset_cost(*w.system, all);
    core::ProbBoundEr engine(*w.system, *w.failures);

    for (std::size_t b = 0; b < fractions.size(); ++b) {
      const double budget = fractions[b] * total;
      const auto ratio_sel = core::rome(*w.system, w.costs, budget, engine);
      const auto raw_sel =
          rome_unnormalized(*w.system, w.costs, budget, engine);
      Rng rng(w.seed * 13 + b);
      for (std::size_t s = 0; s < scenarios; ++s) {
        const auto v = w.failures->sample(rng);
        ratio_stats[b].add(static_cast<double>(
            w.system->surviving_rank(ratio_sel.paths, v)));
        raw_stats[b].add(static_cast<double>(
            w.system->surviving_rank(raw_sel.paths, v)));
      }
    }
  }
  for (std::size_t b = 0; b < fractions.size(); ++b) {
    table.add_row({fmt(fractions[b], 2), fmt(ratio_stats[b].mean(), 2),
                   fmt(raw_stats[b].mean(), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
