// Figure 4 — quality of ER approximations as linearly dependent paths are
// added to a basis: a large-sample Monte Carlo reference ("true" ER), the
// analytical ProbBound of Eq. 7, and a 50-run Monte Carlo estimate.
//
// Expected shape: ProbBound >= reference everywhere (it is an upper bound),
// tight when few dependent paths are present and loosening as more are
// added; MC-50 is noisy precisely in the small-dependence regime where
// ProbBound is tight.
//
// Implementation: all three engines are evaluated through their incremental
// accumulators in a single pass over basis + dependents, so the sweep costs
// one set-construction rather than one evaluation per point.
#include <algorithm>
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "linalg/elimination.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? (opts.full ? "AS1239" : "AS1755") : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 1600 : 400));
  const auto reference_runs = static_cast<std::size_t>(
      flags.get_int("reference-runs", opts.full ? 20000 : 3000));
  const auto small_runs =
      static_cast<std::size_t>(flags.get_int("small-runs", 50));
  const auto max_dependent = static_cast<std::size_t>(
      flags.get_int("max-dependent", opts.full ? 40 : 24));
  const auto step = static_cast<std::size_t>(flags.get_int("step", 4));
  print_header("Fig 4: ER approximations vs dependent paths (" + topology +
                   ")",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;  // Enough failure mass for visible gaps.
  const exp::Workload w = exp::make_workload(spec);

  // An arbitrary basis, then dependent paths appended one by one.
  const auto basis = linalg::independent_row_subset(w.system->matrix());
  std::vector<std::size_t> dependents;
  for (std::size_t q = 0;
       q < w.system->path_count() && dependents.size() < max_dependent; ++q) {
    if (std::find(basis.begin(), basis.end(), q) == basis.end()) {
      dependents.push_back(q);
    }
  }

  Rng rng = w.eval_rng();
  core::MonteCarloEr mc_small(*w.system, *w.failures, small_runs, rng);
  core::ProbBoundEr bound(*w.system, *w.failures);

  // Checkpoints (number of dependent paths) at which values are recorded.
  std::vector<std::size_t> checkpoints = {0};
  for (std::size_t d = 1; d <= dependents.size(); ++d) {
    if (d % step == 0 || d == dependents.size()) checkpoints.push_back(d);
  }

  // Sweeps an accumulator through basis + dependents, recording its value
  // at every checkpoint.
  auto sweep = [&](core::ErAccumulator& acc) {
    std::vector<double> values;
    for (std::size_t q : basis) acc.add(q);
    std::size_t next = 0;
    if (checkpoints[next] == 0) {
      values.push_back(acc.value());
      ++next;
    }
    for (std::size_t d = 0; d < dependents.size(); ++d) {
      acc.add(dependents[d]);
      if (next < checkpoints.size() && checkpoints[next] == d + 1) {
        values.push_back(acc.value());
        ++next;
      }
    }
    return values;
  };

  // Large-sample reference, chunked so per-scenario bases never hold more
  // than `chunk` incremental eliminations in memory at once.
  const std::size_t chunk = 1000;
  std::vector<double> ref_values(checkpoints.size(), 0.0);
  std::size_t done = 0;
  while (done < reference_runs) {
    const std::size_t batch = std::min(chunk, reference_runs - done);
    core::MonteCarloEr ref_chunk(*w.system, *w.failures, batch, rng);
    auto acc = ref_chunk.make_accumulator();
    const auto values = sweep(*acc);
    for (std::size_t i = 0; i < values.size(); ++i) {
      ref_values[i] += values[i] * static_cast<double>(batch);
    }
    done += batch;
  }
  for (double& v : ref_values) v /= static_cast<double>(reference_runs);

  auto acc_small = mc_small.make_accumulator();
  const auto small_values = sweep(*acc_small);
  auto acc_bound = bound.make_accumulator();
  const auto bound_values = sweep(*acc_bound);

  TablePrinter table({"dependent paths",
                      "MC-" + std::to_string(reference_runs) + " (ref)",
                      "ProbBound", "MC-" + std::to_string(small_runs)});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.add_row({std::to_string(checkpoints[i]), fmt(ref_values[i], 3),
                   fmt(bound_values[i], 3), fmt(small_values[i], 3)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
