// Extension — adaptive replanning under non-stationary failures.
//
// A basis selected once for a known failure distribution slowly rots when
// the distribution moves.  This driver replays a concatenated trace of
// three failure regimes (different markopoulou intensities AND different
// fragile-link sets) through the online pipeline under four policies:
//
//   static    plan once, never re-plan (the paper's offline setting);
//   periodic  re-plan on a fixed schedule (warm start);
//   adaptive  re-plan on drift-detector alarms only (warm start);
//   oracle    re-plan every epoch from the true generating model — the
//             upper baseline no online policy can beat.
//
// Reported per policy: cumulative surviving rank, its fraction of the
// oracle, how often the policy re-planned, and the total ER gain
// evaluations spent.  A second table isolates the warm-start replanner:
// the same sequence of distribution updates solved warm vs cold, with
// evaluation counts, objectives and wall time.
//
// Expected shape: adaptive recovers >= 90% of the oracle's cumulative
// rank while re-planning <= 20% of epochs, and the warm re-plans cost a
// small fraction of cold runs' gain evaluations at matching objectives.
#include <chrono>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "failures/trace.h"
#include "online/pipeline.h"
#include "tomo/estimation.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const auto nodes =
      static_cast<std::size_t>(flags.get_int("nodes", opts.full ? 87 : 40));
  const auto links =
      static_cast<std::size_t>(flags.get_int("links", opts.full ? 161 : 80));
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 400 : 150));
  const auto segment_epochs = static_cast<std::size_t>(
      flags.get_int("segment-epochs", opts.full ? 120 : 60));
  const double budget_frac = flags.get_double("budget-frac", 0.05);
  print_header("Extension: adaptive replanning under drift", opts);

  const std::vector<double> intensities{2.0, 10.0, 5.0};
  const exp::Workload w = exp::make_custom_workload(
      nodes, links, paths, opts.seed, intensities.front());
  const double budget = [&] {
    std::vector<std::size_t> all(w.system->path_count());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return budget_frac * w.costs.subset_cost(*w.system, all);
  }();

  // One failure model per regime, each with its own forked rng so a
  // regime change moves which links are fragile, not just how fragile.
  Rng model_rng(opts.seed * 13);
  std::vector<failures::FailureModel> models;
  for (const double intensity : intensities) {
    Rng seg_rng = model_rng.fork();
    models.push_back(failures::markopoulou_model(links, seg_rng, intensity));
  }
  Rng record_rng(opts.seed * 19);
  std::vector<failures::FailureTrace> segments;
  for (const failures::FailureModel& model : models) {
    segments.push_back(
        failures::FailureTrace::record(model, segment_epochs, record_rng));
  }
  const failures::FailureTrace trace =
      failures::FailureTrace::concatenate(segments);

  Rng truth_rng(opts.seed * 23);
  const tomo::GroundTruth truth =
      tomo::random_delays(links, truth_rng);

  // Re-plan ER engine: prob (default) | kernel; the pipeline validates.
  // Re-read with default "prob" — parse_common's "mc" default is for the
  // figure drivers' scenario engines, not the re-planner.
  const std::string er_engine = flags.get_string("engine", "prob");

  const auto run_policy = [&](online::ReplanPolicy policy) {
    online::PipelineConfig config;
    config.budget = budget;
    config.policy = policy;
    config.period = segment_epochs / 2;
    config.er_engine = er_engine;
    config.probe.jitter_std_ms = 0.5;
    config.oracle = [&](std::size_t epoch) {
      return models[std::min(epoch / segment_epochs, models.size() - 1)];
    };
    online::Pipeline pipeline(*w.system, w.costs, truth, config);
    Rng run_rng(opts.seed * 29);
    return pipeline.run(trace, run_rng);
  };

  const online::PipelineResult oracle =
      run_policy(online::ReplanPolicy::kOracle);
  TablePrinter table({"policy", "cum rank", "of oracle", "re-plans",
                      "re-plan frac", "gain evals"});
  for (const online::ReplanPolicy policy :
       {online::ReplanPolicy::kStatic, online::ReplanPolicy::kPeriodic,
        online::ReplanPolicy::kAdaptive, online::ReplanPolicy::kOracle}) {
    const online::PipelineResult r =
        policy == online::ReplanPolicy::kOracle ? oracle : run_policy(policy);
    table.add_row({online::to_string(policy), fmt(r.cumulative_rank, 0),
                   fmt(oracle.cumulative_rank > 0
                           ? r.cumulative_rank / oracle.cumulative_rank
                           : 1.0,
                       3),
                   std::to_string(r.replans), fmt(r.replan_fraction(), 3),
                   std::to_string(r.gain_evaluations)});
  }
  table.print(std::cout, opts.csv);

  // Warm vs cold on the same sequence of distribution updates: re-solve
  // once per regime, warm-starting from the previous selection.  The
  // Monte-Carlo engine prices each gain evaluation realistically (ProbBound
  // gains are so cheap that heap bookkeeping would mask the saving).
  using Clock = std::chrono::steady_clock;
  online::Replanner warm(*w.system, w.costs);
  std::size_t warm_evals = 0;
  std::size_t cold_evals = 0;
  double warm_objective = 0.0;
  double cold_objective = 0.0;
  double warm_ms = 0.0;
  double cold_ms = 0.0;
  Rng mc_rng(opts.seed * 31);
  for (const failures::FailureModel& model : models) {
    const core::MonteCarloEr engine(*w.system, model,
                                    opts.full ? 100 : 40, mc_rng);
    online::ReplanStats ws;
    const auto t0 = Clock::now();
    warm_objective += warm.replan(engine, budget, &ws).objective;
    const auto t1 = Clock::now();
    core::RomeStats cs;
    cold_objective +=
        core::rome(*w.system, w.costs, budget, engine, &cs).objective;
    const auto t2 = Clock::now();
    warm_evals += ws.rome.gain_evaluations;
    cold_evals += cs.gain_evaluations;
    warm_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    cold_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
  }
  std::cout << "\n";
  TablePrinter warm_table(
      {"re-selection", "gain evals", "objective", "time ms"});
  warm_table.add_row({"cold (core::rome x" +
                          std::to_string(models.size()) + ")",
                      std::to_string(cold_evals), fmt(cold_objective, 2),
                      fmt(cold_ms, 2)});
  warm_table.add_row({"warm (Replanner)", std::to_string(warm_evals),
                      fmt(warm_objective, 2), fmt(warm_ms, 2)});
  warm_table.add_row(
      {"warm / cold",
       fmt(cold_evals > 0 ? static_cast<double>(warm_evals) /
                                static_cast<double>(cold_evals)
                          : 1.0,
           3),
       fmt(cold_objective > 0 ? warm_objective / cold_objective : 1.0, 3),
       fmt(cold_ms > 0 ? warm_ms / cold_ms : 1.0, 3)});
  warm_table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
