// Table I — details of the evaluation topologies.
//
// Prints the calibrated synthetic Rocketfuel stand-ins (DESIGN.md §4):
// node/link counts must match the paper exactly; degree statistics are
// reported to document the heavy-tailed structure.
#include <algorithm>

#include "bench_common.h"
#include "graph/isp_topology.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  print_header("Table I: details of topologies", opts);

  TablePrinter table({"AS no. (type)", "No. of Nodes", "No. of Links",
                      "mean deg", "max deg", "connected"});
  const char* kTypes[] = {"Small", "Medium", "Large"};
  int type_index = 0;
  for (const auto& profile : graph::all_isp_profiles()) {
    Rng rng(opts.seed);
    const graph::Graph g =
        graph::build_isp_topology(graph::parse_isp_topology(profile.name), rng);
    std::size_t max_deg = 0;
    for (graph::NodeId n = 0; n < g.node_count(); ++n) {
      max_deg = std::max(max_deg, g.degree(n));
    }
    const double mean_deg = 2.0 * static_cast<double>(g.edge_count()) /
                            static_cast<double>(g.node_count());
    table.add_row({profile.name + " (" + kTypes[type_index++] + ")",
                   std::to_string(g.node_count()),
                   std::to_string(g.edge_count()), fmt(mean_deg, 2),
                   std::to_string(max_deg), g.is_connected() ? "yes" : "no"});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
