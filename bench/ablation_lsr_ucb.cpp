// Ablation — LSR's confidence width.  The paper's analysis uses
// C_i = sqrt((L+1) ln n / mu_i); this bench compares the cumulative reward
// of that width against the classic UCB1 width (w = 2) and a near-greedy
// width (w -> 0), showing the exploration/exploitation tradeoff on the
// tomography bandit.
#include <numeric>

#include "bench_common.h"
#include "learning/lsr.h"
#include "learning/simulator.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 200 : 60));
  const auto epochs = static_cast<std::size_t>(
      flags.get_int("epochs", opts.full ? 1000 : 250));
  const double budget_frac = flags.get_double("budget-frac", 0.12);
  print_header("Ablation: LSR confidence width (" + topology + ", " +
                   std::to_string(epochs) + " epochs)",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;
  const exp::Workload w = exp::make_workload(spec);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double budget = budget_frac * w.costs.subset_cost(*w.system, all);

  struct Variant {
    std::string name;
    double scale;  ///< 0 = paper default (L + 1).
  };
  const std::vector<Variant> variants = {
      {"paper (L+1)", 0.0}, {"UCB1 (2)", 2.0}, {"near-greedy (0.01)", 0.01}};

  TablePrinter table({"width", "cumulative reward", "final-selection score"});
  for (const Variant& variant : variants) {
    learning::Lsr learner(
        *w.system, w.costs,
        learning::LsrConfig{.budget = budget,
                            .confidence_scale = variant.scale});
    Rng sim_rng(opts.seed * 31);
    const auto result =
        learning::run_lsr(learner, *w.system, *w.failures, epochs, sim_rng);
    Rng eval_rng(opts.seed * 63);
    const double final_score = learning::estimate_expected_reward(
        *w.system, learner.final_selection().paths, *w.failures, 400,
        eval_rng);
    table.add_row({variant.name, fmt(result.cumulative_reward, 1),
                   fmt(final_score, 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
