// Ablation — sensitivity of the robustness gap to failure intensity.
//
// The paper evaluates at the Markopoulou model's nominal rates.  This
// sweep scales the failure intensity and measures the ProbRoMe-vs-
// SelectPath surviving-rank gap at a fixed budget: with (almost) no
// failures robust selection cannot help, and as failures intensify the gap
// should open and then compress again (when failures are so heavy that no
// selection survives).
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 400 : 200));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 300 : 100));
  const double budget_frac = flags.get_double("budget-frac", 0.08);
  print_header("Ablation: failure intensity sensitivity (" + topology + ")",
               opts);

  TablePrinter table({"intensity", "E[failures]", "ProbRoMe rank",
                      "SelectPath rank", "gap"});
  for (double intensity : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    exp::WorkloadSpec spec;
    spec.topology = graph::parse_isp_topology(topology);
    spec.candidate_paths = paths;
    spec.seed = opts.seed;
    spec.failure_intensity = intensity;
    const exp::Workload w = exp::make_workload(spec);
    std::vector<std::size_t> all(w.system->path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const double budget = budget_frac * w.costs.subset_cost(*w.system, all);

    core::ProbBoundEr engine(*w.system, *w.failures);
    const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
    Rng sp_rng(opts.seed * 7 + static_cast<std::uint64_t>(intensity * 10));
    const auto sp_sel =
        core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);

    RunningStats rome_stats, sp_stats;
    Rng rng = w.eval_rng();
    for (std::size_t s = 0; s < scenarios; ++s) {
      const auto v = w.failures->sample(rng);
      rome_stats.add(
          static_cast<double>(w.system->surviving_rank(rome_sel.paths, v)));
      sp_stats.add(
          static_cast<double>(w.system->surviving_rank(sp_sel.paths, v)));
    }
    table.add_row({fmt(intensity, 1), fmt(w.failures->expected_failures(), 2),
                   fmt(rome_stats.mean(), 2), fmt(sp_stats.mean(), 2),
                   fmt(rome_stats.mean() - sp_stats.mean(), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
