// Figure 5 — average surviving rank (± std) vs. probing budget for
// ProbRoMe, MonteRoMe(50) and the budget-fitted SelectPath baseline, on the
// paper's three Rocketfuel-like topologies.
//
// Expected shape: both RoMe variants dominate SelectPath at every budget —
// SelectPath needs roughly twice the budget to reach the same rank — with
// ProbRoMe at or slightly above MonteRoMe and with visibly smaller standard
// deviation.  Wall-clock per selection is reported to reproduce the claim
// that MonteRoMe is several times slower than ProbRoMe.
#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>

#include "bench_common.h"
#include "bench_json.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"

namespace rnt::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Series {
  RunningStats rank;        ///< Over monitor sets x failure scenarios.
  RunningStats runtime;     ///< Selection wall-clock seconds.
  RunningStats mc_er;       ///< MC-engine ER of the selection.
  RunningStats er_runtime;  ///< evaluate_parallel wall-clock seconds.
};

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const auto monitor_sets = static_cast<std::size_t>(
      flags.get_int("monitor-sets", opts.full ? 5 : 2));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 500 : 80));
  const auto mc_runs = static_cast<std::size_t>(flags.get_int("mc-runs", 50));
  const double intensity = flags.get_double("intensity", 5.0);
  const std::string json_path = flags.get_string("json", "");

  std::vector<std::string> topologies;
  if (!opts.topology.empty()) {
    topologies = {opts.topology};
  } else {
    // Default and --full both sweep the paper's three topologies at the
    // paper's candidate-path counts; --full raises monitor sets/scenarios.
    topologies = {"AS1755", "AS3257", "AS1239"};
  }

  print_header("Fig 5: rank vs budget (ProbRoMe / MonteRoMe / SelectPath)",
               opts);

  for (const std::string& topology : topologies) {
    const std::size_t default_paths = topology == "AS1755"   ? 400
                                      : topology == "AS3257" ? 1600
                                                             : 2500;
    const auto paths = static_cast<std::size_t>(
        flags.get_int("paths", static_cast<std::int64_t>(default_paths)));

    // Budget grid: fractions of the cost of probing everything.  The
    // paper's absolute budgets (e.g. 20k-140k on AS3257 whose full
    // candidate set costs ~1.1M) live in this low-fraction regime.
    std::vector<double> budget_fractions = {0.02, 0.05, 0.08, 0.12, 0.18, 0.3};

    std::map<std::string, std::map<double, Series>> results;
    for (std::size_t ms = 0; ms < monitor_sets; ++ms) {
      exp::WorkloadSpec spec;
      spec.topology = graph::parse_isp_topology(topology);
      spec.candidate_paths = paths;
      spec.seed = opts.seed + ms * 1000;
      spec.failure_intensity = intensity;
      const exp::Workload w = exp::make_workload(spec);
      std::vector<std::size_t> all(w.system->path_count());
      std::iota(all.begin(), all.end(), std::size_t{0});
      const double total_cost = w.costs.subset_cost(*w.system, all);

      core::ProbBoundEr prob_engine(*w.system, *w.failures);
      Rng mc_rng = w.eval_rng();
      const auto mc_engine_ptr =
          make_scenario_engine(opts.engine, *w.system, *w.failures, mc_runs,
                               mc_rng, opts.kernel);
      const core::ScenarioErEngine& mc_engine = *mc_engine_ptr;

      for (double frac : budget_fractions) {
        const double budget = frac * total_cost;

        auto evaluate = [&](const std::string& name,
                            const core::Selection& sel, double runtime) {
          Series& series = results[name][frac];
          series.runtime.add(runtime);
          Rng rng(w.seed * 31 + static_cast<std::uint64_t>(frac * 1000));
          for (std::size_t s = 0; s < scenarios; ++s) {
            const auto v = w.failures->sample(rng);
            series.rank.add(static_cast<double>(
                w.system->surviving_rank(sel.paths, v)));
          }
          // Common-yardstick ER of every selection under the shared MC
          // scenario set, scored with the multithreaded evaluator
          // (--threads; bitwise-equal to serial at any worker count).
          auto t_er = Clock::now();
          series.mc_er.add(
              mc_engine.evaluate_parallel(sel.paths, opts.threads));
          series.er_runtime.add(seconds_since(t_er));
        };

        auto t0 = Clock::now();
        const auto prob_sel = core::rome(*w.system, w.costs, budget, prob_engine);
        evaluate("ProbRoMe", prob_sel, seconds_since(t0));

        t0 = Clock::now();
        const auto mc_sel = core::rome(*w.system, w.costs, budget, mc_engine);
        evaluate("MonteRoMe", mc_sel, seconds_since(t0));

        t0 = Clock::now();
        Rng sp_rng(w.seed * 77 + static_cast<std::uint64_t>(frac * 1000));
        const auto sp_sel =
            core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);
        evaluate("SelectPath", sp_sel, seconds_since(t0));
      }
    }

    if (!opts.csv) {
      std::cout << "--- " << topology << " (" << paths << " candidate paths, "
                << monitor_sets << " monitor sets x " << scenarios
                << " scenarios) ---\n";
    }
    // --golden drops the wall-clock columns: everything left is a pure
    // function of (seed, engine, parameters), so two runs — at any thread
    // count — diff bitwise (tests/golden pins this).
    std::vector<std::string> header = {"topology",  "budget-frac", "algorithm",
                                       "rank mean", "rank std",    "MC ER"};
    if (!opts.golden) {
      header.push_back("select sec");
      header.push_back("er sec");
    }
    TablePrinter table(header);
    for (const auto& [name, by_budget] : results) {
      for (const auto& [frac, series] : by_budget) {
        std::vector<std::string> row = {
            topology,
            fmt(frac, 2),
            name,
            fmt(series.rank.mean(), 2),
            fmt(series.rank.stddev(), 2),
            fmt(series.mc_er.mean(), 2)};
        if (!opts.golden) {
          row.push_back(fmt(series.runtime.mean(), 3));
          row.push_back(fmt(series.er_runtime.mean(), 4));
        }
        table.add_row(row);
      }
    }
    table.print(std::cout, opts.csv);
    if (!opts.csv) std::cout << "\n";
  }

  // --json: a BENCH_ER-style latency report for the selected engine on the
  // first topology (evaluate / parallel evaluate / one RoMe selection).
  if (!json_path.empty()) {
    exp::WorkloadSpec spec;
    spec.topology = graph::parse_isp_topology(topologies.front());
    spec.candidate_paths = static_cast<std::size_t>(flags.get_int(
        "paths", static_cast<std::int64_t>(topologies.front() == "AS1755" ? 400
                                           : topologies.front() == "AS3257"
                                               ? 1600
                                               : 2500)));
    spec.seed = opts.seed;
    spec.failure_intensity = intensity;
    const exp::Workload w = exp::make_workload(spec);
    Rng mc_rng = w.eval_rng();
    const auto engine_ptr =
        make_scenario_engine(opts.engine, *w.system, *w.failures, mc_runs,
                             mc_rng, opts.kernel);
    std::vector<std::size_t> all(w.system->path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const double budget = 0.08 * w.costs.subset_cost(*w.system, all);

    BenchReport report("fig5_rank_vs_budget");
    report.set_config("topology", topologies.front());
    report.set_config("paths", static_cast<double>(w.system->path_count()));
    report.set_config("engine", opts.engine);
    report.set_config("threads", static_cast<double>(opts.threads));
    report.add_metric("evaluate", measure([&] {
                        (void)engine_ptr->evaluate(all);
                      }));
    report.add_metric("evaluate_mt", measure([&] {
                        (void)engine_ptr->evaluate_parallel(all, opts.threads);
                      }));
    report.add_metric("rome_select", measure(
                                         [&] {
                                           (void)core::rome(*w.system, w.costs,
                                                            budget, *engine_ptr);
                                         },
                                         /*min_iterations=*/5));
    report.write(json_path);
    if (!opts.csv) std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
