// Extension — candidate-path diversity via k-shortest-path routing.
//
// The paper assumes a single routed path per monitor pair; robustness then
// comes purely from choosing *which pairs* to probe.  With multipath
// routing (Yen's k loopless shortest paths) each pair contributes up to k
// structurally different candidates.  This experiment fixes the monitor set
// and budget and sweeps k, comparing ProbRoMe on the enriched candidate
// set against SelectPath.
//
// Expected shape: surviving rank grows with k for ProbRoMe (it can route
// around failure-prone links) and much less for SelectPath (an arbitrary
// basis does not exploit the diversity).
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "graph/isp_topology.h"
#include "tomo/monitors.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto monitors_per_side = static_cast<std::size_t>(
      flags.get_int("monitors", opts.full ? 16 : 10));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 300 : 100));
  const double budget_frac = flags.get_double("budget-frac", 0.15);
  print_header("Extension: robustness vs paths-per-pair k (" + topology + ")",
               opts);

  Rng rng(opts.seed);
  const graph::Graph g =
      graph::build_isp_topology(graph::parse_isp_topology(topology), rng);
  const tomo::MonitorSet monitors =
      tomo::pick_monitors(g, monitors_per_side, monitors_per_side, rng);
  const failures::FailureModel model =
      failures::markopoulou_model(g.edge_count(), rng, 5.0);
  const tomo::CostModel costs = tomo::CostModel::paper_model(monitors, rng);

  TablePrinter table({"k", "candidates", "rank(all)", "ProbRoMe rank",
                      "SelectPath rank"});
  double base_cost = 0.0;  // Cost of the k=1 candidate set; fixed budget base.
  for (std::size_t k : {1u, 2u, 3u, 4u}) {
    const auto candidates =
        tomo::generate_multipath_candidates(g, monitors, k);
    tomo::PathSystem system(g.edge_count(), candidates);
    std::vector<std::size_t> all(system.path_count());
    std::iota(all.begin(), all.end(), std::size_t{0});
    // Fixed absolute budget across k: fraction of the k=1 full cost.
    if (k == 1) base_cost = costs.subset_cost(system, all);
    const double budget = budget_frac * base_cost;

    core::ProbBoundEr engine(system, model);
    const auto rome_sel = core::rome(system, costs, budget, engine);
    Rng sp_rng(opts.seed * 7 + k);
    const auto sp_sel =
        core::select_path_budgeted(system, costs, budget, sp_rng);

    RunningStats rome_stats, sp_stats;
    Rng eval(opts.seed * 11 + k);
    for (std::size_t s = 0; s < scenarios; ++s) {
      const auto v = model.sample(eval);
      rome_stats.add(
          static_cast<double>(system.surviving_rank(rome_sel.paths, v)));
      sp_stats.add(
          static_cast<double>(system.surviving_rank(sp_sel.paths, v)));
    }
    table.add_row({std::to_string(k), std::to_string(system.path_count()),
                   std::to_string(system.full_rank()),
                   fmt(rome_stats.mean(), 2), fmt(sp_stats.mean(), 2)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
