// Extension — end-to-end delay estimation quality vs. budget.
//
// Figures 5/7 report rank and identifiability; this experiment pushes one
// level further to the tomography application itself: per-link delay
// inference through the src/infer pipeline (select → fail → measure →
// solve → score).  For each budget, ProbRoMe's and SelectPath's
// selections are scored by how many link delays they hold identifiable
// under failures and the least-squares estimation error on those links.
//
// Expected shape: coverage tracks Fig 7's identifiability gap, and the
// LS solve keeps the error near the probe-noise floor — the budget buys
// *coverage* first; the redundancy of a robust selection then shaves the
// error on the links both can see.  ext_inference fixes one budget and
// widens the comparison to a size-matched naive baseline and a second
// (correlated) failure family; both drivers share bench_common.h
// scaffolding and the src/infer pipeline, so their numbers cannot
// diverge.
#include <string>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "infer/inference.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 400 : 200));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 200 : 60));
  const double noise = flags.get_double("noise-std", 0.05);
  print_header("Extension: delay-estimation coverage and error vs budget",
               opts);

  const exp::Workload w = make_topology_workload(opts, "AS1755", paths);
  const double total = total_probing_cost(w);
  core::ProbBoundEr engine(*w.system, *w.failures);

  infer::InferenceConfig config;
  config.model = infer::MeasurementModel::kDelay;
  config.noise_std = noise;
  config.scenarios = scenarios;
  config.threads = opts.threads;
  const infer::GroundTruth truth = infer::campaign_truth(
      config.model, w.system->link_count(), opts.seed, config.truth);

  TablePrinter table({"budget-frac", "RoMe links", "RoMe MSE", "RoMe netMSE",
                      "SP links", "SP MSE", "SP netMSE"});
  for (double frac : {0.03, 0.06, 0.1, 0.18, 0.3}) {
    const double budget = frac * total;
    const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
    Rng sp_rng(opts.seed * 7 + static_cast<std::uint64_t>(frac * 100));
    const auto sp_sel =
        core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);

    const infer::InferenceReport rome_report = infer::run_inference(
        *w.system, rome_sel.paths, *w.failures, truth, config, opts.seed);
    const infer::InferenceReport sp_report = infer::run_inference(
        *w.system, sp_sel.paths, *w.failures, truth, config, opts.seed);

    table.add_row({fmt(frac, 2), fmt(rome_report.identifiable.mean(), 1),
                   fmt(rome_report.mse.mean(), 6),
                   fmt(rome_report.network_mse.mean(), 4),
                   fmt(sp_report.identifiable.mean(), 1),
                   fmt(sp_report.mse.mean(), 6),
                   fmt(sp_report.network_mse.mean(), 4)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
