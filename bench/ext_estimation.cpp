// Extension — end-to-end delay estimation quality vs. budget.
//
// Figures 5/7 report rank and identifiability; this experiment pushes one
// level further to the tomography application itself: per-link delay
// inference.  For each budget, ProbRoMe's and SelectPath's selections are
// scored by how many link delays they can uniquely estimate under failures
// and (with probe noise) the estimation error on those links.
//
// Expected shape: estimable-link counts track Fig 7's identifiability gap;
// mean absolute error stays near the probe-noise floor for both (solving an
// independent subsystem), so the budget buys *coverage*, not accuracy.
#include <numeric>

#include "bench_common.h"
#include "core/expected_rank.h"
#include "core/rome.h"
#include "core/select_path.h"
#include "tomo/estimation.h"

namespace rnt::bench {
namespace {

int main_body(Flags& flags) {
  const CommonOptions opts = parse_common(flags);
  const std::string topology =
      opts.topology.empty() ? "AS1755" : opts.topology;
  const auto paths = static_cast<std::size_t>(
      flags.get_int("paths", opts.full ? 400 : 200));
  const auto scenarios = static_cast<std::size_t>(
      flags.get_int("scenarios", opts.full ? 200 : 60));
  const double noise = flags.get_double("noise-std", 0.05);
  print_header("Extension: delay-estimation coverage and error vs budget (" +
                   topology + ")",
               opts);

  exp::WorkloadSpec spec;
  spec.topology = graph::parse_isp_topology(topology);
  spec.candidate_paths = paths;
  spec.seed = opts.seed;
  spec.failure_intensity = 5.0;
  const exp::Workload w = exp::make_workload(spec);
  std::vector<std::size_t> all(w.system->path_count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const double total = w.costs.subset_cost(*w.system, all);

  Rng truth_rng = w.eval_rng();
  const tomo::GroundTruth truth =
      tomo::random_delays(w.graph.edge_count(), truth_rng);
  core::ProbBoundEr engine(*w.system, *w.failures);

  TablePrinter table({"budget-frac", "RoMe links", "RoMe err", "RoMe LS err",
                      "SP links", "SP err"});
  for (double frac : {0.03, 0.06, 0.1, 0.18, 0.3}) {
    const double budget = frac * total;
    const auto rome_sel = core::rome(*w.system, w.costs, budget, engine);
    Rng sp_rng(opts.seed * 7 + static_cast<std::uint64_t>(frac * 100));
    const auto sp_sel =
        core::select_path_budgeted(*w.system, w.costs, budget, sp_rng);

    RunningStats rome_links, rome_err, rome_ls_err, sp_links, sp_err;
    Rng rng(opts.seed * 29 + static_cast<std::uint64_t>(frac * 100));
    for (std::size_t s = 0; s < scenarios; ++s) {
      const auto v = w.failures->sample(rng);
      for (const auto* sel : {&rome_sel, &sp_sel}) {
        const auto meas = tomo::simulate_measurements(*w.system, sel->paths,
                                                      truth, v, noise, rng);
        const auto result =
            tomo::estimate_link_metrics(*w.system, meas, truth);
        auto& links = sel == &rome_sel ? rome_links : sp_links;
        auto& err = sel == &rome_sel ? rome_err : sp_err;
        links.add(static_cast<double>(result.identifiable.size()));
        if (!result.identifiable.empty()) err.add(result.mean_abs_error);
        if (sel == &rome_sel) {
          // Least-squares variant: redundant probes average the noise.
          const auto ls =
              tomo::estimate_link_metrics_lsq(*w.system, meas, truth);
          if (!ls.identifiable.empty()) rome_ls_err.add(ls.mean_abs_error);
        }
      }
    }
    table.add_row({fmt(frac, 2), fmt(rome_links.mean(), 1),
                   fmt(rome_err.mean(), 4), fmt(rome_ls_err.mean(), 4),
                   fmt(sp_links.mean(), 1), fmt(sp_err.mean(), 4)});
  }
  table.print(std::cout, opts.csv);
  return 0;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  return rnt::bench::run_driver(argc, argv, rnt::bench::main_body);
}
